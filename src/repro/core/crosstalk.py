"""Transaction crosstalk: interference between concurrent transactions (§6).

Crosstalk is lock-contention wait time *attributed to transactions*: for
every acquisition that had to wait we record how long the waiter waited
and which transaction was holding the lock.  Aggregation is per ordered
pair (waiting type, holding type), plus per-waiting-type totals used for
Table 1's "mean crosstalk wait time" column.

Transaction *types* are derived from transaction contexts by a
classifier callable; by default the context itself is the type.  The
TPC-W application classifies by servlet name, so crosstalk reads
"BuyConfirm waited 68ms on AdminConfirm".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro import telemetry as _telemetry
from repro.core.context import TransactionContext
from repro.sim.process import SimThread
from repro.sim.sync import Mutex

# Raw-event retention limit.  Aggregates (pairs, by_waiter) are exact
# regardless; only the per-event trail is a ring buffer, so a week-long
# run cannot exhaust memory on raw wait records.
DEFAULT_EVENT_CAPACITY = 1 << 20


def _identity_classifier(ctxt: Any) -> Any:
    """Default classifier: the context is its own type.

    A module-level function, not a lambda, so a recorder (inside a
    loaded StageRuntime) can cross process-pool boundaries — the
    parallel presentation phase pickles decoded stages back to the
    parent.
    """
    return ctxt


class PairStats:
    """Wait-time accumulator for one ordered (waiter, holder) pair."""

    __slots__ = ("count", "total", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, wait: float) -> None:
        self.count += 1
        self.total += wait
        if wait > self.max:
            self.max = wait

    def add_stats(self, other: "PairStats") -> None:
        """Fold another accumulator's totals into this one."""
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class CrosstalkRecorder:
    """Collects crosstalk events and aggregates them by transaction type.

    ``event_capacity`` bounds the raw wait-event trail (a ring buffer
    keeping the most recent events; ``None`` retains everything).  The
    per-pair and per-waiter aggregates are accumulated separately and
    stay exact however long the run.
    """

    def __init__(
        self,
        type_of: Optional[Callable[[Any], Any]] = None,
        event_capacity: Optional[int] = DEFAULT_EVENT_CAPACITY,
        owner: Optional[str] = None,
    ):
        self._type_of = type_of or _identity_classifier
        self.owner = owner
        self.pairs: Dict[Tuple[Any, Any], PairStats] = {}
        self.by_waiter: Dict[Any, PairStats] = {}
        self._events: Deque[Tuple[Any, Any, float]] = deque(maxlen=event_capacity)
        # Telemetry captured at construction; ``owner`` labels the
        # contention metrics and the lock-wait spans.
        tele = _telemetry.ACTIVE
        self._tele = tele
        # Raw event stream for the online stitcher (see repro.live);
        # None unless a profile-event sink was attached before build.
        self._emit_profile = tele.spans.profile_emitter() if tele is not None else None
        if tele is not None and tele.wants_metrics:
            self._tele_wait = tele.metrics.histogram(
                "repro_crosstalk_wait_seconds",
                "lock-contention wait attributed to transactions",
                stage=owner or "<anonymous>",
            )
        else:
            self._tele_wait = None

    @property
    def events(self) -> List[Tuple[Any, Any, float]]:
        """The retained raw ``(waiter, holder, wait)`` events, oldest first."""
        return list(self._events)

    @property
    def event_capacity(self) -> Optional[int]:
        return self._events.maxlen

    def set_classifier(self, type_of: Callable[[Any], Any]) -> None:
        """Replace the context-to-type classifier (e.g. once the other

        stages, whose synopsis tables resolve remote contexts, exist).
        """
        self._type_of = type_of

    # ------------------------------------------------------------------
    def classify(self, context: Any) -> Any:
        if context is None:
            return None
        return self._type_of(context)

    def _pair_stats(self, key: Tuple[Any, Any]) -> PairStats:
        stats = self.pairs.get(key)
        if stats is None:
            stats = PairStats()
            self.pairs[key] = stats
        return stats

    def _waiter_stats(self, waiter_type: Any) -> PairStats:
        stats = self.by_waiter.get(waiter_type)
        if stats is None:
            stats = PairStats()
            self.by_waiter[waiter_type] = stats
        return stats

    def record(self, waiter_type: Any, holder_type: Any, wait: float) -> None:
        """Record one wait of ``wait`` seconds of ``waiter`` on ``holder``."""
        self._pair_stats((waiter_type, holder_type)).add(wait)
        self._waiter_stats(waiter_type).add(wait)
        self._events.append((waiter_type, holder_type, wait))
        if self._emit_profile is not None:
            self._emit_profile(
                ("crosstalk", self.owner, waiter_type, holder_type, wait)
            )
        if self._tele_wait is not None:
            self._tele_wait.observe(wait)

    # ------------------------------------------------------------------
    # Mutex integration
    # ------------------------------------------------------------------
    def observe(self, mutex: Mutex) -> None:
        """Attach this recorder to a mutex's wait observers."""
        mutex.observers.append(self._on_wait)

    def _on_wait(
        self,
        mutex: Mutex,
        waiter: SimThread,
        holders: Tuple,
        mode: str,
        wait_time: float,
    ) -> None:
        if wait_time <= 0:
            return
        tele = self._tele
        if tele is not None:
            # The wait interval just ended: it started wait_time before
            # the acquisition instant (now).
            now = waiter.kernel.now
            span = tele.spans.begin(
                f"lock.wait:{mutex.name}",
                "lock.wait",
                self.owner,
                now - wait_time,
                thread=waiter.tid,
                attrs={"lock": mutex.name, "mode": mode},
            )
            tele.spans.end(span, now)
        waiter_type = self.classify(self._context_of(waiter))
        if not holders:
            # Lock was handed over before we ran; attribute to unknown.
            self.record(waiter_type, None, wait_time)
            return
        share = wait_time / len(holders)
        for _, holder_ctxt in holders:
            self.record(waiter_type, self.classify(holder_ctxt), share)

    @staticmethod
    def _context_of(thread: SimThread) -> Optional[TransactionContext]:
        ctxt = thread.tran_ctxt
        return ctxt if isinstance(ctxt, TransactionContext) else None

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def mean_wait(self, waiter_type: Any, holder_type: Any) -> float:
        stats = self.pairs.get((waiter_type, holder_type))
        return stats.mean if stats else 0.0

    def total_wait_of(self, waiter_type: Any) -> float:
        stats = self.by_waiter.get(waiter_type)
        return stats.total if stats else 0.0

    def pair_table(self) -> List[Tuple[Any, Any, int, float, float]]:
        """Rows ``(waiter, holder, count, mean, max)``, heaviest first."""
        rows = [
            (waiter, holder, stats.count, stats.mean, stats.max)
            for (waiter, holder), stats in self.pairs.items()
        ]
        rows.sort(key=lambda row: row[2] * row[3], reverse=True)
        return rows

    def merge(self, other: "CrosstalkRecorder") -> None:
        """Fold another recorder's data into this one.

        Aggregates merge from the other recorder's exact accumulators —
        not by replaying its raw events — so the result stays correct
        even when the other's ring buffer has dropped old events.
        """
        for key, stats in other.pairs.items():
            self._pair_stats(key).add_stats(stats)
        for waiter_type, stats in other.by_waiter.items():
            self._waiter_stats(waiter_type).add_stats(stats)
        self._events.extend(other._events)
