"""The per-stage Whodunit runtime (§7).

Each process of a multi-tier application — the web server, the
application server, the database — owns one :class:`StageRuntime`.  It
holds the stage's synopsis table, its dictionary of CCTs labeled by
transaction context, the crosstalk recorder, and the profiler overhead
model used to reproduce the paper's §9 measurements.

Threads are attached to a stage at spawn time (``kernel.spawn(...,
stage=runtime)``); the CPU resource then reports every completed service
slice to :meth:`StageRuntime.on_cpu`, which is where sampling happens:
the slice's expected sample count is attributed to the thread's current
call path in the CCT selected by the thread's transaction context.
"""

from __future__ import annotations

import enum
import math
import random as _random
import zlib
from typing import Any, Callable, Dict, Iterator, Optional, TYPE_CHECKING

from repro import telemetry as _telemetry
from repro.core.cct import CallingContextTree
from repro.core.context import SynopsisRef, TransactionContext
from repro.core.crosstalk import CrosstalkRecorder
from repro.core.synopsis import CompositeSynopsis, SynopsisTable
from repro.sim.cpu import CPU, UseCPU
from repro.sim.process import SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class ProfilerMode(enum.Enum):
    """Which profiler (if any) is attached to a stage.

    Mirrors the four columns of Table 2: no profiling, csprof (plain
    call-path sampling), Whodunit (sampling + transaction tracking), and
    gprof (per-call instrumentation + sampling).
    """

    OFF = "off"
    CSPROF = "csprof"
    WHODUNIT = "whodunit"
    GPROF = "gprof"


class OverheadModel:
    """CPU costs charged by each profiler mechanism.

    All values are seconds of extra CPU.  Defaults are calibrated so the
    simulated TPC-W reproduces Table 2's shape: sampling at gprof's
    default 666 Hz costs a few percent, per-call counting costs ~24%,
    and Whodunit's additions on top of csprof are <0.1%.

    ``call_density`` models the procedure-call rate of the instrumented
    binary (calls per second of useful CPU): our simulated applications
    only push a handful of explicit frames per transaction, but a real
    binary under gprof pays ``mcount`` on *every* call, so gprof's cost
    is charged as ``useful_cpu * call_density * call_cost`` on top of
    the explicit frame pushes.
    """

    def __init__(
        self,
        sample_cost: float = 40e-6,
        call_cost: float = 0.7e-6,
        synopsis_cost: float = 2e-6,
        switch_cost: float = 0.5e-6,
        call_density: float = 300_000.0,
    ):
        self.sample_cost = sample_cost
        self.call_cost = call_cost
        self.synopsis_cost = synopsis_cost
        self.switch_cost = switch_cost
        self.call_density = call_density


LOCAL = TransactionContext.empty()


class StageRuntime:
    """Whodunit state for one stage (process) of the application."""

    def __init__(
        self,
        name: str,
        mode: ProfilerMode = ProfilerMode.WHODUNIT,
        sampling_hz: float = 666.0,
        overhead: Optional[OverheadModel] = None,
        type_of: Optional[Callable[[TransactionContext], Any]] = None,
        deterministic: bool = True,
        seed: int = 0,
        crosstalk_capacity: Optional[int] = None,
    ):
        self.name = name
        self.sampling_hz = sampling_hz
        # Deterministic mode attributes each CPU slice's *expected*
        # sample count; stochastic mode draws the integer number of
        # sample hits per slice (Poisson), as a real timer-based
        # profiler would observe.  Expected totals agree; see the
        # sampling ablation benchmark.
        self.deterministic = deterministic
        # CRC32, not hash(): string hashing is randomised per process.
        self._sample_rng = _random.Random(seed ^ zlib.crc32(name.encode()))
        self.overhead = overhead or OverheadModel()
        # Assigning ``mode`` (a property) caches the per-mode guard
        # flags the hot paths test instead of enum comparisons.
        self.mode = mode
        self.synopses = SynopsisTable(name)
        self.ccts: Dict[TransactionContext, CallingContextTree] = {}
        if crosstalk_capacity is None:
            self.crosstalk = CrosstalkRecorder(type_of=type_of, owner=name)
        else:
            self.crosstalk = CrosstalkRecorder(
                type_of=type_of, event_capacity=crosstalk_capacity, owner=name
            )
        # Map synopsis value -> [caller context active at send time,
        # in-flight count], so a response switches back to the CCT the
        # request originated from (§7.4 step 2 of the receive wrapper).
        # Entries are reference-counted and popped when the matching
        # response arrives: the map tracks only in-flight requests
        # instead of growing forever, and a stale prefix from a long-gone
        # request can no longer be spuriously matched.
        self._sent_requests: Dict[int, list] = {}
        # Per-thread pending overhead seconds, folded into the next CPU
        # demand by work().
        self._pending: Dict[int, float] = {}
        # Communication accounting for §9.1.  The *_full counter tracks
        # what shipping whole contexts instead of synopses would cost
        # (the synopsis ablation).
        self.comm_data_bytes = 0
        self.comm_context_bytes = 0
        self.comm_context_bytes_full = 0
        # Call counting (gprof) is global per stage.
        self.total_calls = 0
        # Context adoptions via a received synopsis — one per stage hop
        # into this stage.  Always maintained (a plain int) so the live
        # telemetry's hop spans can be validated against it.
        self.hops_received = 0
        # Synopsis-protocol violations observed at the receive wrappers
        # (foreign, stale or malformed composites) — counted, never
        # adopted.  Keyed by violation kind.
        self.protocol_violations: Dict[str, int] = {}
        # Recovery accounting: idempotent request retransmissions issued
        # by the RPC layer, and requests abandoned after retry exhaustion.
        self.retransmits = 0
        self.abandoned_requests = 0
        # Crash-and-restart events injected into this stage.
        self.crashes = 0
        # Telemetry, captured once at construction (zero-cost when off).
        tele = _telemetry.ACTIVE
        self._tele = tele
        # Raw profile-event stream for online stitching: None unless a
        # profile-event sink (see repro.live) was attached before the
        # system was built, so a span-only run pays one ``is None`` test
        # per sample and an off run pays nothing.
        self._emit_profile = tele.spans.profile_emitter() if tele is not None else None
        if tele is not None and tele.wants_metrics:
            m = tele.metrics
            self._tele_samples = m.counter(
                "repro_profiler_samples_total", "sample events attributed", stage=name
            )
            self._tele_sample_weight = m.counter(
                "repro_profiler_sample_weight_total",
                "expected sample weight attributed",
                stage=name,
            )
            self._tele_overhead = m.counter(
                "repro_profiler_overhead_seconds_total",
                "CPU seconds charged by the overhead model",
                stage=name,
            )
            self._tele_hops = m.counter(
                "repro_profiler_hops_total",
                "transaction contexts adopted from a received synopsis",
                stage=name,
            )
            self._tele_inflight = m.gauge(
                "repro_profiler_inflight_requests",
                "sent requests awaiting a matched response",
                stage=name,
            )
        else:
            self._tele_samples = None
            self._tele_sample_weight = None
            self._tele_overhead = None
            self._tele_hops = None
            self._tele_inflight = None

    # ------------------------------------------------------------------
    # Profiling state
    # ------------------------------------------------------------------
    @property
    def mode(self) -> ProfilerMode:
        return self._mode

    @mode.setter
    def mode(self, value: ProfilerMode) -> None:
        # The guard flags are tested on every CPU slice and every
        # message hop; caching them here keeps the hot paths to one
        # attribute load instead of a property call plus enum identity
        # comparison.
        self._mode = value
        self._profiling = value is not ProfilerMode.OFF
        self._tracking = value is ProfilerMode.WHODUNIT
        self._gprof = value is ProfilerMode.GPROF

    @property
    def profiling(self) -> bool:
        return self._profiling

    @property
    def tracking(self) -> bool:
        """Whether transaction tracking (Whodunit proper) is active."""
        return self._tracking

    def cct_for(self, label: TransactionContext) -> CallingContextTree:
        """The CCT labeled with ``label``, created on first use (§7.1)."""
        cct = self.ccts.get(label)
        if cct is None:
            cct = CallingContextTree(label)
            self.ccts[label] = cct
        return cct

    def current_label(self, thread: SimThread) -> TransactionContext:
        ctxt = thread.tran_ctxt
        if isinstance(ctxt, TransactionContext):
            return ctxt
        return LOCAL

    # ------------------------------------------------------------------
    # Hooks from the simulation substrate
    # ------------------------------------------------------------------
    def on_cpu(self, thread: SimThread, amount: float) -> None:
        """Attribute a completed CPU slice as profile samples.

        Deterministic (expected-value) sampling: a slice of ``amount``
        seconds at frequency f contributes ``amount * f`` samples to the
        thread's current call path, annotated with its transaction
        context.
        """
        if not self._profiling or amount <= 0:
            return
        if self._tracking:
            ctxt = thread.tran_ctxt
            label = ctxt if isinstance(ctxt, TransactionContext) else LOCAL
        else:
            label = LOCAL
        expected = amount * self.sampling_hz
        if self.deterministic:
            weight = expected
        else:
            weight = float(self._poisson(expected))
            if weight == 0.0:
                return
        path = tuple(thread.call_stack)
        cct = self.ccts.get(label)
        if cct is None:
            cct = self.ccts[label] = CallingContextTree(label)
        cct.record_sample(path, weight)
        if self._emit_profile is not None:
            self._emit_profile(
                ("sample", self.name, label, path, weight, thread.kernel.now)
            )
        if self._tele_samples is not None:
            self._tele_samples.inc()
            self._tele_sample_weight.inc(weight)

    def _poisson(self, mean: float) -> int:
        """Poisson sample via inversion (mean values here are small)."""
        if mean > 50:
            # Gaussian approximation for long slices.
            return max(0, round(self._sample_rng.gauss(mean, mean ** 0.5)))
        level = self._sample_rng.random()
        threshold = math.exp(-mean)
        count = 0
        cumulative = threshold
        while level > cumulative:
            count += 1
            threshold *= mean / count
            cumulative += threshold
        return count

    def on_call(self, thread: SimThread) -> None:
        """Procedure-entry hook; gprof's instrumentation lives here."""
        if self._gprof:
            self.total_calls += 1
            self.add_pending(thread, self.overhead.call_cost)
            label = LOCAL
            self.cct_for(label).record_call(thread.call_path())

    # ------------------------------------------------------------------
    # Overhead plumbing
    # ------------------------------------------------------------------
    def add_pending(self, thread: SimThread, seconds: float) -> None:
        """Queue overhead CPU to be charged with the thread's next work."""
        self._pending[thread.tid] = self._pending.get(thread.tid, 0.0) + seconds
        if self._tele_overhead is not None:
            self._tele_overhead.inc(seconds)

    def take_pending(self, thread: SimThread) -> float:
        return self._pending.pop(thread.tid, 0.0)

    def on_thread_exit(self, thread: SimThread) -> None:
        """Teardown hook from :meth:`SimThread.finish` / ``fail``.

        A thread that exits with queued overhead never runs work() again,
        so its pending entry would otherwise be retained forever.
        """
        self._pending.pop(thread.tid, None)

    def inflate(self, thread: SimThread, seconds: float) -> float:
        """Total CPU demand for ``seconds`` of useful work on ``thread``.

        The float expression order is load-bearing: it must match the
        historical ``seconds * hz * cost`` evaluation exactly or
        regenerated runs drift from the golden canonical profiles.
        """
        demand = seconds
        if self._profiling:
            demand += seconds * self.sampling_hz * self.overhead.sample_cost
        if self._gprof:
            # mcount instrumentation on every call of the real binary.
            demand += seconds * self.overhead.call_density * self.overhead.call_cost
        pending = self._pending
        if pending:
            demand += pending.pop(thread.tid, 0.0)
        return demand

    # ------------------------------------------------------------------
    # Context propagation across messages (§5, §7.4)
    # ------------------------------------------------------------------
    def context_at_send(self, thread: SimThread) -> TransactionContext:
        """The transaction context at a send point: any inherited prefix

        context followed by the thread's current call path.
        """
        prefix = thread.tran_ctxt or LOCAL
        return prefix.extend_path(thread.call_path())

    def send_request(self, thread: SimThread) -> Optional[int]:
        """Send-wrapper bookkeeping; returns the synopsis to piggy-back.

        Returns None when tracking is off (nothing is piggy-backed).
        """
        if not self._tracking:
            return None
        context = self.context_at_send(thread)
        emit = self._emit_profile
        if emit is None:
            value = self.synopses.synopsis(context)
        else:
            # Emit a mint event only when this send actually allocated a
            # new synopsis — the online stitcher mirrors the table, not
            # the traffic.
            before = self.synopses.next_value
            value = self.synopses.synopsis(context)
            if self.synopses.next_value != before:
                emit(("synopsis", self.name, value, context, thread.kernel.now))
        entry = self._sent_requests.get(value)
        if entry is None:
            self._sent_requests[value] = [thread.tran_ctxt, 1]
        else:
            # Identical in-flight sends share one entry; count them so
            # each response can match before the entry is dropped.
            entry[0] = thread.tran_ctxt
            entry[1] += 1
        self.add_pending(thread, self.overhead.synopsis_cost)
        self.comm_context_bytes_full += context.wire_size()
        if self._tele_inflight is not None:
            self._tele_inflight.set(len(self._sent_requests))
        return value

    def receive_request(self, thread: SimThread, origin: str, synopsis: Optional[int]) -> None:
        """Receive-wrapper at the callee: adopt the sender's context."""
        if not self._tracking or synopsis is None:
            return
        thread.tran_ctxt = TransactionContext((SynopsisRef(origin, synopsis),))
        self.add_pending(thread, self.overhead.synopsis_cost + self.overhead.switch_cost)
        self.hops_received += 1
        tele = self._tele
        if tele is not None:
            # One instant span per stage hop; joined to the sender's
            # trace through the synopsis it piggy-backed.
            tele.spans.instant(
                f"{origin}->{self.name}",
                "transaction.hop",
                self.name,
                thread.kernel.now,
                thread=thread.tid,
                attrs={"origin": origin, "synopsis": synopsis},
                adopt=(origin, synopsis),
            )
            if self._tele_hops is not None:
                self._tele_hops.inc()

    def send_response(self, thread: SimThread, request_synopsis: Optional[int]) -> Optional[CompositeSynopsis]:
        """Send-wrapper for a response: ``synopsis(α)#synopsis(β)``."""
        if not self._tracking or request_synopsis is None:
            return None
        local = TransactionContext.from_call_path(thread.call_path())
        self.add_pending(thread, self.overhead.synopsis_cost)
        self.comm_context_bytes_full += local.wire_size()
        emit = self._emit_profile
        if emit is None:
            return self.synopses.make_response(request_synopsis, local)
        before = self.synopses.next_value
        composite = self.synopses.make_response(request_synopsis, local)
        if self.synopses.next_value != before:
            emit(("synopsis", self.name, composite.suffix, local, thread.kernel.now))
        return composite

    def receive_response(self, thread: SimThread, composite: Optional[CompositeSynopsis]) -> bool:
        """Receive-wrapper at the caller.

        If the composite's prefix originated here, switch the thread back
        to the context the request was sent from and return True.
        """
        if not self._tracking or composite is None:
            return False
        entry = self._sent_requests.get(composite.prefix)
        if entry is None:
            return False
        context, in_flight = entry
        if in_flight <= 1:
            del self._sent_requests[composite.prefix]
        else:
            entry[1] = in_flight - 1
        thread.tran_ctxt = context
        self.add_pending(thread, self.overhead.switch_cost)
        if self._tele_inflight is not None:
            self._tele_inflight.set(len(self._sent_requests))
        return True

    def note_violation(self, kind: str) -> None:
        """Count a synopsis-protocol violation (never adopt the context)."""
        self.protocol_violations[kind] = self.protocol_violations.get(kind, 0) + 1
        tele = self._tele
        if tele is not None and tele.wants_metrics:
            tele.metrics.counter(
                "repro_rpc_protocol_violations_total",
                "foreign/stale/malformed response synopses rejected",
                stage=self.name,
                kind=kind,
            ).inc()

    def note_retransmit(self, thread: SimThread) -> None:
        """Account an idempotent re-send of an in-flight request."""
        self.retransmits += 1
        self.add_pending(thread, self.overhead.synopsis_cost)

    def abandon_request(self, synopsis: Optional[int]) -> None:
        """Drop the in-flight entry for a request whose retries are
        exhausted, so a lossy run cannot grow the map without bound."""
        if synopsis is None:
            return
        self.abandoned_requests += 1
        entry = self._sent_requests.get(synopsis)
        if entry is None:
            return
        if entry[1] <= 1:
            del self._sent_requests[synopsis]
        else:
            entry[1] -= 1
        if self._tele_inflight is not None:
            self._tele_inflight.set(len(self._sent_requests))

    def crash(self, restart_after: Optional[float] = None) -> int:
        """Crash-and-restart amnesia: lose the synopsis dictionary.

        Models a stage process dying and coming straight back (the
        thread-per-connection tiers restart transparently): the in-memory
        synopsis table and in-flight request map are volatile and lost,
        while sampled profile data — which Whodunit spills to disk — is
        kept.  Pre-crash synopses held by remote stages become
        unresolvable and surface through partial stitching.
        ``restart_after`` is accepted for interface parity with
        :meth:`~repro.seda.stage.SedaStage.crash` and ignored: a bare
        runtime has no threads to restart.  Returns the number of
        synopsis mappings lost.
        """
        self.crashes += 1
        self._sent_requests.clear()
        self._pending.clear()
        if self._tele_inflight is not None:
            self._tele_inflight.set(0)
        lost = self.synopses.clear_mappings()
        if self._emit_profile is not None:
            # The online stitcher mirrors the amnesia: its shadow table
            # forgets the same mappings the real table just lost.
            self._emit_profile(("crash", self.name, lost))
        return lost

    @property
    def in_flight_requests(self) -> int:
        """Requests sent whose responses have not yet been matched."""
        return len(self._sent_requests)

    def account_message(self, data_bytes: int, context_bytes: int) -> None:
        """Track §9.1's data-vs-context communication volumes."""
        self.comm_data_bytes += data_bytes
        self.comm_context_bytes += context_bytes

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def total_weight(self) -> float:
        return sum(cct.total_weight() for cct in self.ccts.values())

    def labels(self):
        return list(self.ccts.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StageRuntime {self.name} mode={self.mode.value} ccts={len(self.ccts)}>"


def work(thread: SimThread, cpu: CPU, seconds: float) -> Iterator:
    """Consume CPU for ``seconds`` of useful work, plus profiler overhead.

    The standard way application code burns CPU::

        yield from work(thread, cpu, 0.0015)

    When the thread's stage profiles, the demand is inflated by the
    overhead model, which is how Table 2 and §9.2/9.3's throughput
    deltas arise.
    """
    stage = thread.stage
    demand = stage.inflate(thread, seconds) if stage is not None else seconds
    yield UseCPU(cpu, demand)
    return demand
