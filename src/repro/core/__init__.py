"""Whodunit's core: transaction contexts, CCTs, flow detection, crosstalk.

This package is the paper's contribution.  The layering is:

- :mod:`repro.core.callpath` / :mod:`repro.core.context` — the
  transaction-context value model (§2).
- :mod:`repro.core.cct` — the Calling Context Tree used by the call-path
  profiler core (csprof analog, §7.1).
- :mod:`repro.core.synopsis` — 4-byte transaction-context synopses used
  across distribution (§7.4).
- :mod:`repro.core.flow` — the shared-memory transaction-flow detection
  algorithm (§3).
- :mod:`repro.core.profiler` — the per-stage Whodunit runtime tying the
  above together, with profiler overhead models (§7, §9).
- :mod:`repro.core.crosstalk` — interference measurement (§6).
- :mod:`repro.core.stitch` — post-mortem stitching of per-stage
  profiles into one end-to-end transactional profile (§5).
"""

from repro.core.context import TransactionContext, SynopsisRef
from repro.core.cct import CallingContextTree
from repro.core.synopsis import SynopsisTable, CompositeSynopsis
from repro.core.profiler import ProfilerMode, StageRuntime, work
from repro.core.crosstalk import CrosstalkRecorder
from repro.core.stitch import FlowEdge, flow_graph, stitch_profiles

__all__ = [
    "TransactionContext",
    "SynopsisRef",
    "CallingContextTree",
    "SynopsisTable",
    "CompositeSynopsis",
    "ProfilerMode",
    "StageRuntime",
    "work",
    "CrosstalkRecorder",
    "stitch_profiles",
    "flow_graph",
    "FlowEdge",
]
