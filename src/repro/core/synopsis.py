"""Transaction-context synopses (§7.4).

A synopsis is a compact, unique 4-byte representation of a transaction
context.  Each stage keeps a :class:`SynopsisTable` mapping contexts to
sequentially allocated 32-bit identifiers (and back), and piggy-backs
synopses — not whole contexts — on messages, which is what keeps
Whodunit's communication overhead around 1% (§9.1).

Response messages carry a :class:`CompositeSynopsis`
``synopsis(α) # synopsis(β)``: the caller's request synopsis α as
prefix, the callee's local call-path synopsis β as suffix, joined by the
``#`` delimiter.  The caller recognises its own α prefix and switches
back to the CCT the request originated from instead of inheriting the
callee's context.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from repro.core.context import TransactionContext

SYNOPSIS_BYTES = 4
DELIMITER_BYTES = 1

# The 32-bit synopsis space is partitioned per stage: the top 12 bits
# come from a hash of the stage name, the low 20 bits are sequential.
# This keeps synopses 4 bytes wide while letting a caller recognise at a
# glance that a composite's prefix was allocated by itself rather than
# by the callee (the paper achieves the same with per-connection state).
_STAGE_BITS = 12
_LOCAL_BITS = 32 - _STAGE_BITS
_LOCAL_MASK = (1 << _LOCAL_BITS) - 1


def _stage_base(stage_name: str) -> int:
    return (zlib.crc32(stage_name.encode()) & ((1 << _STAGE_BITS) - 1)) << _LOCAL_BITS


# Process-wide registry of which stage name owns which 12-bit base.
# Two distinct stage names can hash into the same bucket (only 4096
# buckets), in which case both stages would mint identical 32-bit
# synopses and ``is_own_prefix`` would misfire — a caller could adopt a
# stranger's response.  At table construction the colliding name is
# deterministically salted and rehashed until it lands in a free bucket;
# re-creating a table for an already-registered name reuses its bucket,
# so repeated runs in one process stay stable.
_BASE_OWNERS: Dict[int, str] = {}


def _claim_stage_base(stage_name: str) -> int:
    """The collision-free base for ``stage_name``, registering it."""
    salt = 0
    candidate = stage_name
    while True:
        base = _stage_base(candidate)
        owner = _BASE_OWNERS.get(base)
        if owner is None:
            _BASE_OWNERS[base] = stage_name
            return base
        if owner == stage_name:
            return base
        salt += 1
        if salt > (1 << _STAGE_BITS):
            raise OverflowError(
                f"no free 12-bit synopsis bucket for stage {stage_name!r}"
            )
        candidate = f"{stage_name}\x00{salt}"


class CompositeSynopsis:
    """A response synopsis ``prefix # suffix`` (each a 4-byte synopsis)."""

    __slots__ = ("prefix", "suffix")

    def __init__(self, prefix: int, suffix: int):
        self.prefix = prefix
        self.suffix = suffix

    def wire_size(self) -> int:
        """Bytes on the wire: two synopses plus the ``#`` delimiter."""
        return 2 * SYNOPSIS_BYTES + DELIMITER_BYTES

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CompositeSynopsis)
            and other.prefix == self.prefix
            and other.suffix == self.suffix
        )

    def __hash__(self) -> int:
        return hash((CompositeSynopsis, self.prefix, self.suffix))

    def __repr__(self) -> str:
        return f"{self.prefix:#010x}#{self.suffix:#010x}"


class SynopsisTable:
    """Per-stage dictionary of transaction contexts and their synopses.

    Identifiers are allocated sequentially, so uniqueness is by
    construction; 2^32 distinct contexts per stage is far beyond any
    workload in the paper.
    """

    # Cap on the per-table composite cache (see :meth:`make_response`).
    _COMPOSITE_CACHE_MAX = 65536

    def __init__(self, stage_name: str):
        self.stage_name = stage_name
        self._by_context: Dict[TransactionContext, int] = {}
        self._by_value: Dict[int, TransactionContext] = {}
        self._base = _claim_stage_base(stage_name)
        self._next = 1  # 0 is reserved for "no context"
        # Copy-on-write response composites: the same (request, local)
        # pair produces one shared immutable CompositeSynopsis, so a
        # stage answering the same call path repeatedly forwards the
        # cached object instead of re-encoding a fresh one per message.
        self._composites: Dict[Tuple[int, int], CompositeSynopsis] = {}

    def __len__(self) -> int:
        return len(self._by_context)

    @property
    def base(self) -> int:
        """The stage's claimed 12-bit base, as a full 32-bit prefix."""
        return self._base

    @property
    def next_value(self) -> int:
        """The next sequential local identifier to be allocated."""
        return self._next

    def restore_snapshot(self, base: int, next_value: int) -> None:
        """Adopt a persisted ``(base, next)`` pair from a profile dump.

        Post-mortem stitching may run in a fresh process whose
        registration order differs from the run that produced the dump;
        re-deriving the base there could salt colliding names into
        *different* buckets than the run used.  Dumps therefore carry
        the salted base explicitly, and decoding restores it here so
        synopses minted after load can never alias dumped values.

        The bucket this table claimed at construction is released (if
        still owned) and the persisted one registered, unless another
        stage already owns it — resolution is unaffected either way
        since it reads the restored ``_by_value`` map directly.
        """
        if base != self._base:
            if _BASE_OWNERS.get(self._base) == self.stage_name:
                del _BASE_OWNERS[self._base]
            if _BASE_OWNERS.get(base) is None:
                _BASE_OWNERS[base] = self.stage_name
            self._base = base
        if next_value > self._next:
            self._next = next_value

    def clear_mappings(self) -> int:
        """Forget every context<->synopsis mapping (crash amnesia).

        The sequential allocator is deliberately *not* rewound: values
        minted after the loss never alias values minted before it, so a
        pre-crash synopsis held by a remote stage becomes *unresolvable*
        (surfaced by partial stitching) instead of silently resolving to
        whatever context happened to re-use its slot.  Returns the
        number of mappings lost.
        """
        lost = len(self._by_context)
        self._by_context.clear()
        self._by_value.clear()
        self._composites.clear()
        return lost

    def synopsis(self, context: TransactionContext) -> int:
        """The synopsis for ``context``, allocating one on first use."""
        value = self._by_context.get(context)
        if value is None:
            if self._next > _LOCAL_MASK:
                raise OverflowError("synopsis space exhausted")
            value = self._base | self._next
            self._next += 1
            self._by_context[context] = value
            self._by_value[value] = context
        return value

    def resolve(self, value: int) -> TransactionContext:
        """The context a synopsis stands for (post-mortem stitching)."""
        try:
            return self._by_value[value]
        except KeyError:
            raise KeyError(
                f"stage {self.stage_name!r} has no synopsis {value:#010x}"
            ) from None

    def lookup(self, context: TransactionContext) -> Optional[int]:
        """The synopsis for ``context`` if already allocated, else None."""
        return self._by_context.get(context)

    def make_response(self, request_synopsis: int, local_context: TransactionContext) -> CompositeSynopsis:
        """Compose the response synopsis ``request # synopsis(local)``.

        Composites are immutable and value-equal, so identical pairs
        share one cached instance (copy-on-write forwarding).
        """
        key = (request_synopsis, self.synopsis(local_context))
        composite = self._composites.get(key)
        if composite is None:
            composite = CompositeSynopsis(key[0], key[1])
            if len(self._composites) < self._COMPOSITE_CACHE_MAX:
                self._composites[key] = composite
        return composite

    def is_own_prefix(self, composite: CompositeSynopsis) -> bool:
        """True if the composite's prefix was allocated by this stage —

        i.e. the message is a response to one of our own requests.
        """
        return composite.prefix in self._by_value

    def items(self) -> Tuple[Tuple[TransactionContext, int], ...]:
        return tuple(self._by_context.items())
