"""Transaction contexts (§2 of the paper).

A transaction context is the complete execution history of a request
through the stages of a multi-tier application: the call paths of every
stage it has flowed through, concatenated in execution order.  We model
it as an immutable sequence of *elements*:

- frame or handler or stage names (strings) for locally observed
  execution, and
- :class:`SynopsisRef` values standing in for a remote stage's context,
  received as a 4-byte synopsis over a channel (§7.4).  These are
  expanded back into full contexts post-mortem by
  :mod:`repro.core.stitch`.

Two normalisations from §4.1 are built in:

- *collapse*: consecutive occurrences of the same element (an event
  handler re-scheduled until its I/O completes) are collapsed to one;
- *loop pruning*: when appending an element that already occurs in the
  sequence (requests on a persistent connection revisiting the read
  handler), the suffix that closes the loop is pruned, mirroring the
  treatment of recursion in call graphs.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple

# Cap on the per-context append() memo.  The hot paths (SEDA stage
# dispatch, event-loop dispatch) append a small fixed vocabulary of
# stage/handler names, so the memo stays tiny; the cap keeps a call
# site that appends high-cardinality elements (e.g. per-request ids)
# from pinning unbounded derived contexts to a long-lived root.
_APPEND_MEMO_MAX = 128

# Process-wide intern table for call-path-rooted contexts.  Send
# wrappers build the same handful of local call-path contexts millions
# of times per run; interning returns the one canonical object, so the
# downstream synopsis-table and CCT dict lookups hit the identity fast
# path.  Capped like the append memo: beyond the cap, construction
# falls back to fresh (still-equal) objects.
_PATH_INTERN_MAX = 4096
_PATH_INTERN: dict = {}


class SynopsisRef:
    """Opaque stand-in for a remote transaction context.

    ``value`` is the 4-byte synopsis integer allocated by the sending
    stage; ``origin`` names that stage so post-mortem stitching knows
    which synopsis dictionary resolves it.
    """

    __slots__ = ("origin", "value")

    def __init__(self, origin: str, value: int):
        if not (0 <= value <= 0xFFFFFFFF):
            raise ValueError(f"synopsis must fit in 4 bytes, got {value!r}")
        self.origin = origin
        self.value = value

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, SynopsisRef)
            and other.origin == self.origin
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((SynopsisRef, self.origin, self.value))

    def __repr__(self) -> str:
        return f"syn({self.origin}:{self.value:#010x})"


class UnresolvedRef:
    """A synopsis reference the presentation phase could not expand.

    Produced by non-strict stitching (:func:`repro.core.stitch.
    resolve_context` with ``strict=False``) when the originating stage's
    synopsis dictionary no longer holds ``value`` — e.g. the stage
    crashed and lost its table, or its dump was never collected.  The
    element keeps the profile weight attached to its context instead of
    aborting the whole analysis; it renders as ``<unresolved:origin:0x…>``.
    """

    __slots__ = ("origin", "value")

    def __init__(self, origin: str, value: int):
        self.origin = origin
        self.value = value

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, UnresolvedRef)
            and other.origin == self.origin
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((UnresolvedRef, self.origin, self.value))

    def __repr__(self) -> str:
        return f"<unresolved:{self.origin}:{self.value:#010x}>"


class TransactionContext:
    """Immutable transaction context.

    Use :meth:`append` / :meth:`concat` to derive new contexts; the
    collapse and loop-pruning normalisations are applied on append by
    default and can be disabled for debugging-style full histories
    (§4.1 notes the complete context "may be useful ... for debugging").
    """

    __slots__ = ("elements", "_hash", "_appends", "_extends")

    def __init__(self, elements: Iterable[Any] = ()):
        self.elements: Tuple[Any, ...] = tuple(elements)
        self._hash = hash(self.elements)
        # Lazy memo of append() results.  The hot paths (SEDA stage
        # dispatch, event-loop dispatch) append the same handful of
        # stage/handler names to the same contexts millions of times;
        # contexts are immutable, so the derived context can be reused.
        # Keys are (element, collapse, prune); the dict is only
        # allocated on first use, capped at _APPEND_MEMO_MAX entries,
        # and never pickled (see __reduce__).
        self._appends = None
        # Same idea for extend_path(): the send wrappers extend each
        # prefix context with a small vocabulary of call paths.
        self._extends = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "TransactionContext":
        return _EMPTY

    @classmethod
    def from_call_path(cls, path: Iterable[str]) -> "TransactionContext":
        """Context of a fresh transaction: simply the local call path.

        Returns the process-wide interned instance for the path, so the
        per-response ``synopsis(local)`` lookup in the send wrapper is a
        dict hit on an identical key object.
        """
        path = tuple(path)
        interned = _PATH_INTERN.get(path)
        if interned is None:
            interned = cls(path)
            if len(_PATH_INTERN) < _PATH_INTERN_MAX:
                _PATH_INTERN[path] = interned
        return interned

    def append(
        self,
        element: Any,
        collapse: bool = True,
        prune: bool = True,
    ) -> "TransactionContext":
        """Extend the context with one element, applying normalisation."""
        cache = self._appends
        key = (element, collapse, prune)
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                return cached
        else:
            cache = self._appends = {}
        elements = self.elements
        if collapse and elements and elements[-1] == element:
            result = self
        elif prune and element in elements:
            index = elements.index(element)
            result = TransactionContext(elements[: index + 1])
        else:
            result = TransactionContext(elements + (element,))
        if len(cache) < _APPEND_MEMO_MAX:
            cache[key] = result
        return result

    def concat(self, other: "TransactionContext") -> "TransactionContext":
        """Plain concatenation (no normalisation), as at stage handoff."""
        if not other.elements:
            return self
        if not self.elements:
            return other
        return TransactionContext(self.elements + other.elements)

    def extend_path(self, path: Iterable[str]) -> "TransactionContext":
        """Suffix the context with a local call path (no normalisation)."""
        path = tuple(path)
        if not path:
            return self
        cache = self._extends
        if cache is None:
            cache = self._extends = {}
        result = cache.get(path)
        if result is None:
            result = TransactionContext(self.elements + path)
            if len(cache) < _APPEND_MEMO_MAX:
                cache[path] = result
        return result

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def starts_with(self, prefix: "TransactionContext") -> bool:
        n = len(prefix.elements)
        return self.elements[:n] == prefix.elements

    @property
    def is_empty(self) -> bool:
        return not self.elements

    def wire_size(self) -> int:
        """Bytes to ship this context verbatim instead of as a synopsis.

        Strings cost their length plus a separator; opaque references
        cost 4 bytes.  Used by the synopsis ablation to quantify what
        the 4-byte synopses save (§7.4, §9.1).
        """
        total = 0
        for element in self.elements:
            if isinstance(element, str):
                total += len(element) + 1
            else:
                total += 4
        return total

    def __iter__(self) -> Iterator[Any]:
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, TransactionContext)
            and other.elements == self.elements
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Pickle only the elements: the hash is per-process (it follows
        # PYTHONHASHSEED) and the append memo is a per-process
        # optimisation, not state.  Both are rebuilt on unpickle.
        return (TransactionContext, (self.elements,))

    def __repr__(self) -> str:
        inner = ", ".join(
            e if isinstance(e, str) else repr(e) for e in self.elements
        )
        return f"ctxt[{inner}]"


_EMPTY = TransactionContext(())
