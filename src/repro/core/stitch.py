"""Post-mortem stitching of per-stage profiles (§5, §7.1).

At run time each stage only knows remote contexts as opaque 4-byte
synopses.  After the run, the presentation phase resolves every
:class:`~repro.core.context.SynopsisRef` against the originating stage's
synopsis dictionary — recursively, since a web server's context may in
turn reference a proxy's — producing, per stage, CCTs labeled with fully
expanded end-to-end transaction contexts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.core.cct import CallingContextTree
from repro.core.context import SynopsisRef, TransactionContext
from repro.core.profiler import StageRuntime

MAX_DEPTH = 32


class StitchError(Exception):
    """Raised on unresolvable or cyclic synopsis references."""


def resolve_context(
    context: TransactionContext,
    stages: Dict[str, StageRuntime],
    _depth: int = 0,
) -> TransactionContext:
    """Expand every SynopsisRef in ``context`` into the context it names."""
    if _depth > MAX_DEPTH:
        raise StitchError("synopsis reference chain too deep (cycle?)")
    elements: List = []
    for element in context:
        if isinstance(element, SynopsisRef):
            origin = stages.get(element.origin)
            if origin is None:
                raise StitchError(
                    f"context references unknown stage {element.origin!r}"
                )
            remote = origin.synopses.resolve(element.value)
            expanded = resolve_context(remote, stages, _depth + 1)
            elements.extend(expanded.elements)
        else:
            elements.append(element)
    return TransactionContext(elements)


class StitchedProfile:
    """The end-to-end transactional profile of a multi-tier application."""

    def __init__(self):
        # (stage name, fully resolved context) -> CCT
        self.entries: Dict[Tuple[str, TransactionContext], CallingContextTree] = {}

    def add(self, stage: str, context: TransactionContext, cct: CallingContextTree) -> None:
        existing = self.entries.get((stage, context))
        if existing is None:
            clone = cct.copy()
            clone.label = context
            self.entries[(stage, context)] = clone
        else:
            existing.merge(cct)

    # ------------------------------------------------------------------
    def stages(self) -> List[str]:
        return sorted({stage for stage, _ in self.entries})

    def contexts_of(self, stage: str) -> List[TransactionContext]:
        return [ctxt for (s, ctxt) in self.entries if s == stage]

    def cct(self, stage: str, context: TransactionContext) -> CallingContextTree:
        return self.entries[(stage, context)]

    def stage_weight(self, stage: str) -> float:
        return sum(
            cct.total_weight()
            for (s, _), cct in self.entries.items()
            if s == stage
        )

    def total_weight(self) -> float:
        return sum(cct.total_weight() for cct in self.entries.values())

    def context_share(self, stage: str, context: TransactionContext) -> float:
        """Fraction of the stage's samples under one transaction context."""
        total = self.stage_weight(stage)
        if total == 0:
            return 0.0
        return self.entries[(stage, context)].total_weight() / total


class FlowEdge:
    """A request edge between stages in the stitched profile (Fig 7).

    ``from_stage``'s transaction at context ``from_context`` issued the
    request that ``to_stage`` executed under ``to_context`` (both fully
    resolved).
    """

    __slots__ = ("from_stage", "from_context", "to_stage", "to_context")

    def __init__(self, from_stage, from_context, to_stage, to_context):
        self.from_stage = from_stage
        self.from_context = from_context
        self.to_stage = to_stage
        self.to_context = to_context

    def __eq__(self, other):
        return isinstance(other, FlowEdge) and (
            self.from_stage,
            self.from_context,
            self.to_stage,
            self.to_context,
        ) == (
            other.from_stage,
            other.from_context,
            other.to_stage,
            other.to_context,
        )

    def __hash__(self):
        return hash(
            (self.from_stage, self.from_context, self.to_stage, self.to_context)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.from_stage}:{self.from_context!r} ==> "
            f"{self.to_stage}:{self.to_context!r}"
        )


def flow_graph(stages: Iterable[StageRuntime]) -> List[FlowEdge]:
    """The request edges of the end-to-end profile (Fig 7's arrows).

    Every CCT label starting with a synopsis reference names the stage
    whose send created it; the edge connects the sender's context (the
    resolved referenced context) to the receiver's resolved context.
    """
    by_name = {stage.name: stage for stage in stages}
    edges: List[FlowEdge] = []
    seen = set()
    for stage in by_name.values():
        for label in stage.ccts:
            for element in label:
                if not isinstance(element, SynopsisRef):
                    continue
                origin = by_name.get(element.origin)
                if origin is None:
                    continue
                sender_context = resolve_context(
                    origin.synopses.resolve(element.value), by_name
                )
                edge = FlowEdge(
                    origin.name,
                    sender_context,
                    stage.name,
                    resolve_context(label, by_name),
                )
                if edge not in seen:
                    seen.add(edge)
                    edges.append(edge)
    return edges


def stitch_profiles(stages: Iterable[StageRuntime]) -> StitchedProfile:
    """Combine per-stage profiles into one transactional profile.

    Every CCT label containing synopsis references is resolved into the
    full cross-stage transaction context; CCTs whose labels resolve to
    the same context merge.
    """
    by_name = {stage.name: stage for stage in stages}
    profile = StitchedProfile()
    for stage in by_name.values():
        for label, cct in stage.ccts.items():
            resolved = resolve_context(label, by_name)
            profile.add(stage.name, resolved, cct)
    return profile
