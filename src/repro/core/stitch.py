"""Post-mortem stitching of per-stage profiles (§5, §7.1).

At run time each stage only knows remote contexts as opaque 4-byte
synopses.  After the run, the presentation phase resolves every
:class:`~repro.core.context.SynopsisRef` against the originating stage's
synopsis dictionary — recursively, since a web server's context may in
turn reference a proxy's — producing, per stage, CCTs labeled with fully
expanded end-to-end transaction contexts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.cct import CallingContextTree
from repro.core.context import SynopsisRef, TransactionContext, UnresolvedRef
from repro.core.profiler import StageRuntime

ResolutionCache = Dict[TransactionContext, TransactionContext]


class StitchError(Exception):
    """Raised on unresolvable or cyclic synopsis references."""


class StitchStats:
    """Resolution bookkeeping for one presentation-phase pass.

    ``attempted`` counts every synopsis reference the resolver tried to
    expand (cache hits expand nothing and count nothing — each distinct
    context is counted once per pass); ``unresolved`` counts those that
    could not be expanded and were kept as
    :class:`~repro.core.context.UnresolvedRef` placeholders.
    """

    __slots__ = ("attempted", "unresolved")

    def __init__(self):
        self.attempted = 0
        self.unresolved = 0

    @property
    def completeness(self) -> float:
        """Fraction of attempted synopsis resolutions that succeeded."""
        if self.attempted == 0:
            return 1.0
        return (self.attempted - self.unresolved) / self.attempted


def resolve_context(
    context: TransactionContext,
    stages: Dict[str, StageRuntime],
    cache: Optional[ResolutionCache] = None,
    strict: bool = True,
    stats: Optional[StitchStats] = None,
    _active: Optional[Set[Tuple[str, int]]] = None,
    _chain: Optional[List[SynopsisRef]] = None,
) -> TransactionContext:
    """Expand every SynopsisRef in ``context`` into the context it names.

    Cycles among synopsis references are detected with a visited set, so
    arbitrarily deep legitimate chains resolve while a genuine cycle
    raises :class:`StitchError` naming the offending chain.

    With ``strict=False`` an unresolvable reference — unknown stage,
    synopsis missing from the origin's table (crash amnesia, uncollected
    dump), or a cyclic chain — does not abort the analysis: it becomes
    an :class:`~repro.core.context.UnresolvedRef` element that keeps the
    profile weight attached to its (partially expanded) context, and is
    tallied in ``stats``.

    ``cache`` maps already-resolved contexts to their expansions.  Pass
    the same dict across calls (as :func:`stitch_profiles` and
    :func:`flow_graph` do) to resolve each synopsis once instead of once
    per referencing label; entries are only ever added for fully
    resolved contexts, so a shared cache stays correct.  Do not share a
    cache between ``strict`` and non-strict passes: a non-strict pass
    caches partial expansions.
    """
    if cache is not None:
        cached = cache.get(context)
        if cached is not None:
            return cached
    if _active is None:
        _active = set()
        _chain = []
    elements: List = []
    for element in context:
        if not isinstance(element, SynopsisRef):
            elements.append(element)
            continue
        if stats is not None:
            stats.attempted += 1
        origin = stages.get(element.origin)
        if origin is None:
            if strict:
                raise StitchError(
                    f"context references unknown stage {element.origin!r}"
                )
            if stats is not None:
                stats.unresolved += 1
            elements.append(UnresolvedRef(element.origin, element.value))
            continue
        key = (element.origin, element.value)
        if key in _active:
            if strict:
                chain = " -> ".join(repr(ref) for ref in _chain + [element])
                raise StitchError(f"cyclic synopsis reference chain: {chain}")
            if stats is not None:
                stats.unresolved += 1
            elements.append(UnresolvedRef(element.origin, element.value))
            continue
        try:
            remote = origin.synopses.resolve(element.value)
        except KeyError:
            if strict:
                raise
            if stats is not None:
                stats.unresolved += 1
            elements.append(UnresolvedRef(element.origin, element.value))
            continue
        _active.add(key)
        _chain.append(element)
        try:
            expanded = resolve_context(
                remote, stages, cache, strict, stats, _active, _chain
            )
        finally:
            _active.discard(key)
            _chain.pop()
        elements.extend(expanded.elements)
    resolved = TransactionContext(elements)
    if cache is not None:
        cache[context] = resolved
    return resolved


class StitchedProfile:
    """The end-to-end transactional profile of a multi-tier application."""

    def __init__(self):
        # (stage name, fully resolved context) -> CCT
        self.entries: Dict[Tuple[str, TransactionContext], CallingContextTree] = {}
        # stage name -> memoized total weight; without it, context_share
        # re-walks every CCT of the stage per queried context (quadratic
        # over contexts).  Invalidated by add(); call invalidate_weights()
        # after mutating a returned CCT directly.
        self._stage_weights: Dict[str, float] = {}
        # Resolution tallies from the stitch pass that built the profile
        # (see StitchStats): how many synopsis references were attempted
        # and how many remain as UnresolvedRef placeholders.
        self.synopsis_refs = 0
        self.unresolved_refs = 0

    @property
    def completeness(self) -> float:
        """Fraction of synopsis references the stitch pass resolved.

        A profile with entries but no cross-stage references is fully
        stitched (1.0).  A profile with *nothing* in it — every dump
        dropped, every sample lost — reports 0.0: an empty profile is
        "nothing was stitched", not "everything was".
        """
        if self.synopsis_refs == 0:
            return 1.0 if self.entries else 0.0
        return (self.synopsis_refs - self.unresolved_refs) / self.synopsis_refs

    def add(self, stage: str, context: TransactionContext, cct: CallingContextTree) -> None:
        self._stage_weights.pop(stage, None)
        existing = self.entries.get((stage, context))
        if existing is None:
            clone = cct.copy()
            clone.label = context
            self.entries[(stage, context)] = clone
        else:
            existing.merge(cct)

    def merge(self, other: "StitchedProfile") -> None:
        """Fold another stitched profile into this one.

        Entries for the same ``(stage, resolved context)`` pair merge
        their CCTs (the iterative merge from :mod:`repro.core.cct`);
        resolution tallies are summed.  This is the deterministic reduce
        of the parallel presentation phase: folding shard profiles in
        shard-index order yields output independent of which worker
        produced which profile when.
        """
        for (stage, context), cct in other.entries.items():
            self.add(stage, context, cct)
        self.synopsis_refs += other.synopsis_refs
        self.unresolved_refs += other.unresolved_refs

    def invalidate_weights(self, stage: Optional[str] = None) -> None:
        """Drop memoized stage weights (for one stage, or all)."""
        if stage is None:
            self._stage_weights.clear()
        else:
            self._stage_weights.pop(stage, None)

    # ------------------------------------------------------------------
    def stages(self) -> List[str]:
        return sorted({stage for stage, _ in self.entries})

    def contexts_of(self, stage: str) -> List[TransactionContext]:
        return [ctxt for (s, ctxt) in self.entries if s == stage]

    def cct(self, stage: str, context: TransactionContext) -> CallingContextTree:
        return self.entries[(stage, context)]

    def stage_weight(self, stage: str) -> float:
        cached = self._stage_weights.get(stage)
        if cached is None:
            cached = sum(
                cct.total_weight()
                for (s, _), cct in self.entries.items()
                if s == stage
            )
            self._stage_weights[stage] = cached
        return cached

    def total_weight(self) -> float:
        return sum(self.stage_weight(stage) for stage in self.stages())

    def context_share(self, stage: str, context: TransactionContext) -> float:
        """Fraction of the stage's samples under one transaction context."""
        total = self.stage_weight(stage)
        if total == 0:
            return 0.0
        return self.entries[(stage, context)].total_weight() / total


class FlowEdge:
    """A request edge between stages in the stitched profile (Fig 7).

    ``from_stage``'s transaction at context ``from_context`` issued the
    request that ``to_stage`` executed under ``to_context`` (both fully
    resolved).
    """

    __slots__ = ("from_stage", "from_context", "to_stage", "to_context")

    def __init__(self, from_stage, from_context, to_stage, to_context):
        self.from_stage = from_stage
        self.from_context = from_context
        self.to_stage = to_stage
        self.to_context = to_context

    def __eq__(self, other):
        return isinstance(other, FlowEdge) and (
            self.from_stage,
            self.from_context,
            self.to_stage,
            self.to_context,
        ) == (
            other.from_stage,
            other.from_context,
            other.to_stage,
            other.to_context,
        )

    def __hash__(self):
        return hash(
            (self.from_stage, self.from_context, self.to_stage, self.to_context)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.from_stage}:{self.from_context!r} ==> "
            f"{self.to_stage}:{self.to_context!r}"
        )


def flow_graph(
    stages: Iterable[StageRuntime],
    cache: Optional[ResolutionCache] = None,
    strict: bool = True,
) -> List[FlowEdge]:
    """The request edges of the end-to-end profile (Fig 7's arrows).

    Every CCT label starting with a synopsis reference names the stage
    whose send created it; the edge connects the sender's context (the
    resolved referenced context) to the receiver's resolved context.

    With ``strict=False`` an edge whose sender synopsis is unresolvable
    (crash amnesia) is dropped; the receiver's contexts still appear,
    partially resolved, in the stitched profile.

    ``cache`` is a resolution cache shared with other presentation-phase
    passes (e.g. the :func:`stitch_profiles` call over the same stages,
    with the same ``strict``).
    """
    by_name = {stage.name: stage for stage in stages}
    if cache is None:
        cache = {}
    edges: List[FlowEdge] = []
    seen = set()
    for stage in by_name.values():
        for label in stage.ccts:
            for element in label:
                if not isinstance(element, SynopsisRef):
                    continue
                origin = by_name.get(element.origin)
                if origin is None:
                    continue
                try:
                    remote = origin.synopses.resolve(element.value)
                except KeyError:
                    if strict:
                        raise
                    continue
                sender_context = resolve_context(
                    remote, by_name, cache, strict
                )
                edge = FlowEdge(
                    origin.name,
                    sender_context,
                    stage.name,
                    resolve_context(label, by_name, cache, strict),
                )
                if edge not in seen:
                    seen.add(edge)
                    edges.append(edge)
    return edges


def stitch_profiles(
    stages: Iterable[StageRuntime],
    cache: Optional[ResolutionCache] = None,
    strict: bool = True,
) -> StitchedProfile:
    """Combine per-stage profiles into one transactional profile.

    Every CCT label containing synopsis references is resolved into the
    full cross-stage transaction context; CCTs whose labels resolve to
    the same context merge.  With ``strict=False`` unresolvable
    references degrade to ``UnresolvedRef`` placeholders instead of
    raising, and the returned profile's ``synopsis_refs`` /
    ``unresolved_refs`` / ``completeness`` report how much of the run
    could be stitched.  Resolutions are memoized in ``cache`` (a fresh
    dict if not given); pass the same dict to :func:`flow_graph` to
    reuse the work.
    """
    by_name = {stage.name: stage for stage in stages}
    if cache is None:
        cache = {}
    stats = StitchStats()
    profile = StitchedProfile()
    for stage in by_name.values():
        for label, cct in stage.ccts.items():
            resolved = resolve_context(label, by_name, cache, strict, stats)
            profile.add(stage.name, resolved, cct)
    profile.synopsis_refs = stats.attempted
    profile.unresolved_refs = stats.unresolved
    return profile
