"""The instruction emulator with flow hooks and a translation cache.

Whodunit traps the instructions executed inside critical sections by
emulating them (§7.2).  Emulation is functionally identical to direct
execution but (a) reports every read, move and mutation to the attached
hooks — the flow detector's input — and (b) costs far more cycles.  Like
QEMU, the emulator caches translated programs: the first emulated run of
a program pays translation plus emulation, subsequent runs pay emulation
only.  Table 3 is exactly these three cost levels for Apache's queue
critical sections.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.vm.isa import (
    SP,
    Add,
    And,
    Call,
    Cmp,
    Dec,
    Imm,
    Inc,
    Instruction,
    Jge,
    Jl,
    Jmp,
    Jnz,
    Jz,
    Lea,
    Mem,
    Mov,
    Mul,
    Nop,
    Or,
    Pop,
    Push,
    Reg,
    Ret,
    Sub,
    Xor,
    _BinaryArith,
    _UnaryArith,
)
from repro.vm.assembler import Program
from repro.vm.machine import Machine, VMError, mem_loc, reg_loc

DIRECT = "direct"
EMULATE = "emulate"


class EmulationHooks:
    """Observer interface for emulated instructions.

    The flow detector implements this.  ``read`` fires for every
    location whose value an instruction consumes (including registers
    used for address computation — dereferencing a consumed pointer is a
    *use* of it); ``mov`` fires for location-to-location moves; and
    ``write_invalid`` fires for writes of immediate or computed values,
    the poisoning writes of §3.2.
    """

    def read(self, loc) -> None:
        """Location ``loc``'s value was used."""

    def mov(self, dst, src) -> None:
        """A value was moved from location ``src`` to location ``dst``."""

    def write_invalid(self, dst) -> None:
        """An immediate/computed value was written to location ``dst``."""


class CostModel:
    """Cycle costs of the three execution modes.

    Defaults are calibrated to Table 3's shape: emulation costs roughly
    two orders of magnitude more than direct execution, and first-time
    translation costs several times the emulation itself.
    """

    def __init__(
        self,
        emulate_per_instruction: float = 800.0,
        translate_per_instruction: float = 3400.0,
    ):
        self.emulate_per_instruction = emulate_per_instruction
        self.translate_per_instruction = translate_per_instruction
        self.direct_costs = {
            Mov: 4.0,
            Add: 3.0,
            Sub: 3.0,
            Mul: 5.0,
            And: 3.0,
            Or: 3.0,
            Xor: 3.0,
            Inc: 3.0,
            Dec: 3.0,
            Lea: 2.0,
            Cmp: 2.0,
            Jmp: 2.0,
            Jz: 2.0,
            Jnz: 2.0,
            Jl: 2.0,
            Jge: 2.0,
            Push: 4.0,
            Pop: 4.0,
            Call: 4.0,
            Ret: 4.0,
            Nop: 1.0,
        }
        # Memory operands add a cache/load penalty over register ops.
        self.memory_operand_cost = 3.0

    def direct_cost(self, instr: Instruction) -> float:
        cost = self.direct_costs.get(type(instr), 3.0)
        for slot in instr.__slots__:
            if isinstance(getattr(instr, slot), Mem):
                cost += self.memory_operand_cost
        return cost

    def translation_cost(self, program: Program) -> float:
        return self.translate_per_instruction * len(program)


class RunResult:
    """Outcome of one program execution."""

    __slots__ = ("mode", "steps", "cycles", "translated")

    def __init__(self, mode: str, steps: int, cycles: float, translated: bool):
        self.mode = mode
        self.steps = steps
        self.cycles = cycles
        self.translated = translated

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RunResult {self.mode} steps={self.steps} "
            f"cycles={self.cycles:.1f} translated={self.translated}>"
        )


class Emulator:
    """Executes programs against a :class:`Machine`.

    One emulator per process: its translation cache models QEMU's
    per-process translated-code cache.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        cache_translations: bool = True,
    ):
        self.cost_model = cost_model or CostModel()
        # Disabling the translation cache retranslates on every run —
        # the translation-cache ablation of DESIGN.md §5.
        self.cache_translations = cache_translations
        self._translated: Set[int] = set()

    # ------------------------------------------------------------------
    def is_translated(self, program: Program) -> bool:
        return program.program_id in self._translated

    def invalidate_cache(self) -> None:
        self._translated.clear()

    # ------------------------------------------------------------------
    def run(
        self,
        program: Program,
        machine: Machine,
        thread_key,
        mode: str = EMULATE,
        hooks: Optional[EmulationHooks] = None,
        max_steps: int = 100_000,
    ) -> RunResult:
        """Execute ``program`` to completion.

        ``mode=EMULATE`` fires hooks and charges emulation (plus
        translation on the first run); ``mode=DIRECT`` models native
        execution — no hooks, direct cycle costs.
        """
        if mode not in (DIRECT, EMULATE):
            raise ValueError(f"unknown mode {mode!r}")
        emulating = mode == EMULATE
        active_hooks = hooks if (emulating and hooks is not None) else _SILENT
        regs = machine.registers(thread_key)
        memory = machine.memory

        translated_now = False
        cycles = 0.0
        if emulating:
            if not self.cache_translations:
                cycles += self.cost_model.translation_cost(program)
                translated_now = True
            elif program.program_id not in self._translated:
                self._translated.add(program.program_id)
                cycles += self.cost_model.translation_cost(program)
                translated_now = True

        zero_flag = False
        less_flag = False
        pc = 0
        steps = 0
        instructions = program.instructions
        end = len(instructions)

        def effective_address(operand: Mem) -> int:
            address = operand.disp
            if operand.base is not None:
                active_hooks.read(reg_loc(thread_key, operand.base.index))
                address += regs.read(operand.base.index)
            if operand.index is not None:
                active_hooks.read(reg_loc(thread_key, operand.index.index))
                address += regs.read(operand.index.index) * operand.scale
            return address

        def read_operand(operand):
            """Returns (value, location-or-None), firing read hooks."""
            if isinstance(operand, Imm):
                return operand.value, None
            if isinstance(operand, Reg):
                loc = reg_loc(thread_key, operand.index)
                active_hooks.read(loc)
                return regs.read(operand.index), loc
            address = effective_address(operand)
            loc = mem_loc(address)
            active_hooks.read(loc)
            return memory.load(address), loc

        def write_location(operand):
            """Returns the destination location, without firing hooks."""
            if isinstance(operand, Reg):
                return reg_loc(thread_key, operand.index)
            return mem_loc(effective_address(operand))

        def store(loc, value) -> None:
            if loc[0] == "reg":
                regs.write(loc[2], value)
            else:
                memory.store(loc[1], value)

        while pc < end:
            if steps >= max_steps:
                raise VMError(
                    f"{program.name}: exceeded {max_steps} steps (infinite loop?)"
                )
            instr = instructions[pc]
            steps += 1
            if emulating:
                cycles += self.cost_model.emulate_per_instruction
            else:
                cycles += self.cost_model.direct_cost(instr)
            pc += 1

            if isinstance(instr, Mov):
                value, src_loc = read_operand(instr.src)
                dst_loc = write_location(instr.dst)
                store(dst_loc, value)
                if src_loc is None:
                    active_hooks.write_invalid(dst_loc)
                else:
                    active_hooks.mov(dst_loc, src_loc)
            elif isinstance(instr, _BinaryArith):
                src_value, _ = read_operand(instr.src)
                dst_value, dst_loc = read_operand(instr.dst)
                store(dst_loc, _binary_op(instr, dst_value, src_value))
                active_hooks.write_invalid(dst_loc)
            elif isinstance(instr, _UnaryArith):
                value, dst_loc = read_operand(instr.dst)
                delta = 1 if isinstance(instr, Inc) else -1
                store(dst_loc, value + delta)
                active_hooks.write_invalid(dst_loc)
            elif isinstance(instr, Lea):
                address = effective_address(instr.src)
                dst_loc = reg_loc(thread_key, instr.dst.index)
                regs.write(instr.dst.index, address)
                active_hooks.write_invalid(dst_loc)
            elif isinstance(instr, Cmp):
                a, _ = read_operand(instr.a)
                b, _ = read_operand(instr.b)
                zero_flag = a == b
                less_flag = a < b
            elif isinstance(instr, Jmp):
                pc = program.target_of(instr)
            elif isinstance(instr, Jz):
                if zero_flag:
                    pc = program.target_of(instr)
            elif isinstance(instr, Jnz):
                if not zero_flag:
                    pc = program.target_of(instr)
            elif isinstance(instr, Jl):
                if less_flag:
                    pc = program.target_of(instr)
            elif isinstance(instr, Jge):
                if not less_flag:
                    pc = program.target_of(instr)
            elif isinstance(instr, Push):
                value, src_loc = read_operand(instr.src)
                sp = regs.read(SP.index) - 1
                regs.write(SP.index, sp)
                if sp < 0:
                    raise VMError(f"{program.name}: stack overflow (sp={sp})")
                dst_loc = mem_loc(sp)
                memory.store(sp, value)
                if src_loc is None:
                    active_hooks.write_invalid(dst_loc)
                else:
                    active_hooks.mov(dst_loc, src_loc)
            elif isinstance(instr, Pop):
                sp = regs.read(SP.index)
                src_loc = mem_loc(sp)
                active_hooks.read(src_loc)
                value = memory.load(sp)
                regs.write(SP.index, sp + 1)
                dst_loc = write_location(instr.dst)
                store(dst_loc, value)
                active_hooks.mov(dst_loc, src_loc)
            elif isinstance(instr, Call):
                sp = regs.read(SP.index) - 1
                regs.write(SP.index, sp)
                if sp < 0:
                    raise VMError(f"{program.name}: stack overflow (sp={sp})")
                memory.store(sp, pc)  # return index; a computed value
                active_hooks.write_invalid(mem_loc(sp))
                pc = program.target_of(instr)
            elif isinstance(instr, Ret):
                sp = regs.read(SP.index)
                active_hooks.read(mem_loc(sp))
                pc = memory.load(sp)
                regs.write(SP.index, sp + 1)
                if not (0 <= pc <= end):
                    raise VMError(f"{program.name}: ret to bad index {pc}")
            elif isinstance(instr, Nop):
                pass
            else:  # pragma: no cover - unreachable with a sealed ISA
                raise VMError(f"unimplemented instruction {instr!r}")

        return RunResult(mode, steps, cycles, translated_now)


def _binary_op(instr: _BinaryArith, dst: int, src: int) -> int:
    if isinstance(instr, Add):
        return dst + src
    if isinstance(instr, Sub):
        return dst - src
    if isinstance(instr, Mul):
        return dst * src
    if isinstance(instr, And):
        return dst & src
    if isinstance(instr, Or):
        return dst | src
    if isinstance(instr, Xor):
        return dst ^ src
    raise VMError(f"unknown arithmetic {instr!r}")  # pragma: no cover


_SILENT = EmulationHooks()
