"""Instruction set of the critical-section virtual machine.

The flow-detection algorithm (§3.2) divides instructions into two
classes:

- **MOV operations** that move a value from one location (register or
  memory) to another — these *propagate* transaction contexts;
- **everything else that writes a location** (immediates, arithmetic,
  address computation) — these associate the *invalid* context with the
  written location.

The ISA here is deliberately x86-flavoured: two-operand MOV/arithmetic,
register+displacement memory addressing, flags set by CMP, conditional
jumps.  Word-addressed memory (one value per address) keeps programs
readable without changing the algorithm's behaviour.
"""

from __future__ import annotations

from typing import Optional, Union


class Operand:
    """Base class of instruction operands."""

    __slots__ = ()


class Imm(Operand):
    """An immediate constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __repr__(self) -> str:
        return f"${self.value}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Imm) and other.value == self.value

    def __hash__(self) -> int:
        return hash((Imm, self.value))


class Reg(Operand):
    """One of 16 general-purpose registers, r0..r15."""

    __slots__ = ("index",)

    COUNT = 16

    def __init__(self, index: int):
        if not (0 <= index < self.COUNT):
            raise ValueError(f"register index out of range: {index}")
        self.index = index

    def __repr__(self) -> str:
        return f"%r{self.index}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Reg) and other.index == self.index

    def __hash__(self) -> int:
        return hash((Reg, self.index))


class Mem(Operand):
    """A memory operand: ``disp(base, index, scale)`` as on x86.

    Effective address = ``disp + regs[base] + regs[index] * scale``.
    """

    __slots__ = ("disp", "base", "index", "scale")

    def __init__(
        self,
        disp: int = 0,
        base: Optional[Reg] = None,
        index: Optional[Reg] = None,
        scale: int = 1,
    ):
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.disp = disp
        self.base = base
        self.index = index
        self.scale = scale

    def address_registers(self):
        """Registers read while computing the effective address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return regs

    def __repr__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(repr(self.base))
        if self.index is not None:
            parts.append(f"{self.index!r}*{self.scale}")
        inner = ",".join(parts)
        return f"{self.disp}({inner})"


Source = Union[Imm, Reg, Mem]
Destination = Union[Reg, Mem]


class Instruction:
    """Base class of executable instructions."""

    __slots__ = ()
    mnemonic = "?"

    def __repr__(self) -> str:
        operands = ", ".join(
            repr(getattr(self, slot)) for slot in self.__slots__
        )
        return f"{self.mnemonic} {operands}".rstrip()


def _check_dst(dst: Destination) -> None:
    if not isinstance(dst, (Reg, Mem)):
        raise TypeError(f"destination must be Reg or Mem, got {dst!r}")


def _check_src(src: Source) -> None:
    if not isinstance(src, (Imm, Reg, Mem)):
        raise TypeError(f"source must be Imm, Reg or Mem, got {src!r}")


class Mov(Instruction):
    """``MOV dst, src`` — the context-propagating instruction.

    With an immediate source the write is *not* a move of application
    data, so the algorithm poisons the destination (§3.3.2's NULL
    sanity-check discussion relies on exactly this).
    """

    __slots__ = ("dst", "src")
    mnemonic = "mov"

    def __init__(self, dst: Destination, src: Source):
        _check_dst(dst)
        _check_src(src)
        self.dst = dst
        self.src = src


class _BinaryArith(Instruction):
    """Two-operand arithmetic ``OP dst, src`` (dst = dst OP src)."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: Destination, src: Source):
        _check_dst(dst)
        _check_src(src)
        self.dst = dst
        self.src = src


class Add(_BinaryArith):
    mnemonic = "add"


class Sub(_BinaryArith):
    mnemonic = "sub"


class Mul(_BinaryArith):
    mnemonic = "mul"


class And(_BinaryArith):
    mnemonic = "and"


class Or(_BinaryArith):
    mnemonic = "or"


class Xor(_BinaryArith):
    mnemonic = "xor"


class _UnaryArith(Instruction):
    """One-operand arithmetic ``OP dst``."""

    __slots__ = ("dst",)

    def __init__(self, dst: Destination):
        _check_dst(dst)
        self.dst = dst


class Inc(_UnaryArith):
    """The shared-counter instruction of Fig 2 (``count++``)."""

    mnemonic = "inc"


class Dec(_UnaryArith):
    mnemonic = "dec"


class Lea(Instruction):
    """``LEA reg, mem`` — address computation; writes a derived value."""

    __slots__ = ("dst", "src")
    mnemonic = "lea"

    def __init__(self, dst: Reg, src: Mem):
        if not isinstance(dst, Reg):
            raise TypeError("lea destination must be a register")
        if not isinstance(src, Mem):
            raise TypeError("lea source must be a memory operand")
        self.dst = dst
        self.src = src


class Cmp(Instruction):
    """``CMP a, b`` — sets flags from ``a - b``; writes no location."""

    __slots__ = ("a", "b")
    mnemonic = "cmp"

    def __init__(self, a: Source, b: Source):
        _check_src(a)
        _check_src(b)
        self.a = a
        self.b = b


class _Branch(Instruction):
    """Jump to a label (resolved to an index by the assembler)."""

    __slots__ = ("target",)

    def __init__(self, target: str):
        if not isinstance(target, str):
            raise TypeError("branch target must be a label name")
        self.target = target


class Jmp(_Branch):
    mnemonic = "jmp"


class Jz(_Branch):
    """Jump if the last CMP compared equal (zero flag)."""

    mnemonic = "jz"


class Jnz(_Branch):
    mnemonic = "jnz"


class Jl(_Branch):
    """Jump if the last CMP's first operand was less (signed)."""

    mnemonic = "jl"


class Jge(_Branch):
    mnemonic = "jge"


class Label(Instruction):
    """Pseudo-instruction marking a branch target; costs nothing."""

    __slots__ = ("name",)
    mnemonic = "label"

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"{self.name}:"


class Nop(Instruction):
    __slots__ = ()
    mnemonic = "nop"


# ----------------------------------------------------------------------
# Stack and procedure-call instructions.  r15 is the stack pointer; the
# stack grows downwards.  PUSH/POP move data between registers/memory
# and the stack, so they are MOV-class: they *propagate* transaction
# contexts, which is how the paper's consumers carry consumed values in
# stack locals ("these local stack variables' locations get associated
# with the transaction context ctxt_prod", §3.3.1).  CALL's pushed
# return address is a computed value (invalid context).
# ----------------------------------------------------------------------
SP = Reg(15)


class Push(Instruction):
    """``PUSH src`` — decrement SP, store src at the new top of stack."""

    __slots__ = ("src",)
    mnemonic = "push"

    def __init__(self, src: Source):
        _check_src(src)
        self.src = src


class Pop(Instruction):
    """``POP dst`` — load the top of stack into dst, increment SP."""

    __slots__ = ("dst",)
    mnemonic = "pop"

    def __init__(self, dst: Destination):
        _check_dst(dst)
        self.dst = dst


class Call(_Branch):
    """``CALL label`` — push the return index and jump."""

    mnemonic = "call"


class Ret(Instruction):
    """``RET`` — pop the return index and jump to it."""

    __slots__ = ()
    mnemonic = "ret"
