"""Assembler: turns instruction lists with labels into runnable programs.

A :class:`Program` is the unit of translation caching in the emulator —
the paper's QEMU caches translated critical sections, and Table 3
measures the difference between the first (translate + emulate) and
subsequent (emulate only) executions of ``ap_queue_push`` /
``ap_queue_pop``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.vm.isa import Instruction, Label, _Branch


class AssemblyError(Exception):
    """Raised for duplicate or undefined labels."""


class Program:
    """A named, label-resolved instruction sequence."""

    _next_id = 0

    def __init__(self, name: str, instructions: Sequence[Instruction], labels: Dict[str, int]):
        self.name = name
        self.instructions: List[Instruction] = list(instructions)
        self.labels = dict(labels)
        self.program_id = Program._next_id
        Program._next_id += 1

    def __len__(self) -> int:
        return len(self.instructions)

    def target_of(self, branch: _Branch) -> int:
        try:
            return self.labels[branch.target]
        except KeyError:
            raise AssemblyError(
                f"{self.name}: undefined label {branch.target!r}"
            ) from None

    def listing(self) -> str:
        """Human-readable assembly listing."""
        lines = [f"; program {self.name} ({len(self)} instructions)"]
        reverse = {}
        for label, index in self.labels.items():
            reverse.setdefault(index, []).append(label)
        for i, instr in enumerate(self.instructions):
            for label in reverse.get(i, []):
                lines.append(f"{label}:")
            lines.append(f"  {i:3d}  {instr!r}")
        for label in reverse.get(len(self.instructions), []):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name} len={len(self)}>"


class Assembler:
    """Builder collecting instructions and resolving labels.

    ::

        asm = Assembler("count_inc")
        asm.emit(Inc(Mem(COUNT_ADDR)))
        program = asm.build()
    """

    def __init__(self, name: str):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}

    def emit(self, *instructions: Instruction) -> "Assembler":
        for instr in instructions:
            if not isinstance(instr, Instruction):
                raise TypeError(f"not an instruction: {instr!r}")
            if isinstance(instr, Label):
                if instr.name in self._labels:
                    raise AssemblyError(
                        f"{self.name}: duplicate label {instr.name!r}"
                    )
                self._labels[instr.name] = len(self._instructions)
            else:
                self._instructions.append(instr)
        return self

    def build(self) -> Program:
        program = Program(self.name, self._instructions, self._labels)
        # Validate all branch targets now rather than at run time.
        for instr in program.instructions:
            if isinstance(instr, _Branch):
                program.target_of(instr)
        return program
