"""Machine state: word-addressed memory and per-thread register files.

Locations are named exactly as in §3.2 of the paper: the union of the
process's memory addresses and each thread's annotated registers
(``reg_ti``).  :func:`mem_loc` / :func:`reg_loc` build the hashable
location descriptors used as keys of the flow detector's dictionary.
"""

from __future__ import annotations

from typing import Dict, Tuple


class VMError(Exception):
    """Raised on invalid machine operations."""


Location = Tuple


def mem_loc(address: int) -> Location:
    """The location descriptor of a memory word."""
    return ("mem", address)


def reg_loc(thread_key, index: int) -> Location:
    """The location descriptor of thread ``thread_key``'s register."""
    return ("reg", thread_key, index)


class Memory:
    """Sparse word-addressed memory shared by the threads of a process."""

    def __init__(self):
        self._words: Dict[int, int] = {}
        self._brk = 0x1000  # bump-allocation frontier

    def load(self, address: int) -> int:
        """Read a word; uninitialised memory reads as 0."""
        if address < 0:
            raise VMError(f"negative address {address}")
        return self._words.get(address, 0)

    def store(self, address: int, value: int) -> None:
        if address < 0:
            raise VMError(f"negative address {address}")
        self._words[address] = int(value)

    def alloc(self, words: int, align: int = 1) -> int:
        """Reserve a region of ``words`` words; returns its base address."""
        if words <= 0:
            raise VMError("allocation must be positive")
        if align > 1 and self._brk % align:
            self._brk += align - (self._brk % align)
        base = self._brk
        self._brk += words
        return base

    def snapshot(self) -> Dict[int, int]:
        """Copy of all nonzero words (testing aid)."""
        return dict(self._words)


class RegisterFile:
    """Sixteen general-purpose registers belonging to one thread."""

    COUNT = 16

    def __init__(self, thread_key):
        self.thread_key = thread_key
        self._values = [0] * self.COUNT

    def read(self, index: int) -> int:
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        self._values[index] = int(value)

    def load_arguments(self, *values: int) -> None:
        """Convenience: set r0, r1, ... to ``values`` (call arguments)."""
        if len(values) > self.COUNT:
            raise VMError("too many arguments")
        for i, value in enumerate(values):
            self._values[i] = int(value)

    def dump(self) -> Tuple[int, ...]:
        return tuple(self._values)


class Machine:
    """A process's machine state: shared memory + per-thread registers."""

    def __init__(self):
        self.memory = Memory()
        self._register_files: Dict[object, RegisterFile] = {}

    def registers(self, thread_key) -> RegisterFile:
        """The register file of ``thread_key``, created on first use."""
        regs = self._register_files.get(thread_key)
        if regs is None:
            regs = RegisterFile(thread_key)
            self._register_files[thread_key] = regs
        return regs
