"""A small register/memory virtual machine — the QEMU substitute.

Whodunit detects transaction flow through shared memory by analysing the
*instructions* executed inside critical sections (§3), which the paper
does by emulating them with a CPU emulator extracted from QEMU (§7.2).
This package provides the equivalent substrate: a word-addressed memory,
16 general-purpose registers per thread, a MOV/arithmetic/branch
instruction set, an assembler DSL, and an emulator with

- *hooks* reporting every data movement, mutation and read to the flow
  detector, and
- a *cycle cost model* distinguishing direct execution, first-time
  translation plus emulation, and cached-translation emulation, which
  reproduces Table 3.

The critical sections of the simulated Apache (queue push/pop), the
shared counter of Fig 2 and the memory allocator of Fig 3 are written as
programs for this machine in :mod:`repro.vm.programs`.
"""

from repro.vm.isa import (
    SP,
    Add,
    And,
    Call,
    Cmp,
    Dec,
    Imm,
    Inc,
    Jmp,
    Jnz,
    Jz,
    Jl,
    Jge,
    Label,
    Lea,
    Mem,
    Mov,
    Mul,
    Nop,
    Or,
    Pop,
    Push,
    Reg,
    Ret,
    Sub,
    Xor,
)
from repro.vm.assembler import Assembler, Program
from repro.vm.machine import Machine, Memory, RegisterFile, VMError
from repro.vm.emulator import CostModel, Emulator, EmulationHooks, RunResult

__all__ = [
    "Imm",
    "Reg",
    "Mem",
    "Mov",
    "Add",
    "Sub",
    "Inc",
    "Dec",
    "Mul",
    "And",
    "Or",
    "Xor",
    "Lea",
    "Cmp",
    "Push",
    "Pop",
    "Call",
    "Ret",
    "SP",
    "Jmp",
    "Jz",
    "Jnz",
    "Jl",
    "Jge",
    "Label",
    "Nop",
    "Assembler",
    "Program",
    "Machine",
    "Memory",
    "RegisterFile",
    "VMError",
    "Emulator",
    "EmulationHooks",
    "CostModel",
    "RunResult",
]
