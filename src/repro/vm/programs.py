"""Critical-section programs: the shared-memory access patterns of §3.

Each builder lays out its shared data in a :class:`~repro.vm.machine.Memory`
and returns the programs operating on it.  These are straight ports of
the paper's figures:

- :class:`BoundedQueue` — Fig 1's ``ap_queue_push`` / ``ap_queue_pop``
  (Apache 2.x listener/worker connection queue);
- :class:`SharedCounter` — Fig 2's ``count++`` pattern;
- :class:`FreeListAllocator` — Fig 3's ``mem_alloc`` / ``mem_free``;
- :class:`LinkedQueue` — a ``sys/queue.h``-style linked list with the
  NULL sanity-checking discussed in §3.3.2;
- :class:`SlotShuffleQueue` — element relocation inside the shared
  structure (the priority-queue discussion in §3.2).

Calling conventions: arguments arrive in r0, r1, ...; results are
returned in r0, r1.  The ``use_*`` programs model the first instructions
a consumer executes *after* leaving the critical section — the
MAX-instruction window in which Whodunit detects consumption (§7.2).
"""

from __future__ import annotations

from repro.vm.assembler import Assembler, Program
from repro.vm.isa import Cmp, Dec, Imm, Inc, Jge, Jmp, Jnz, Jz, Label, Lea, Mem, Mov, Reg
from repro.vm.machine import Memory

R0, R1, R2, R3, R4, R5 = (Reg(i) for i in range(6))

NULL = 0


class BoundedQueue:
    """Fig 1: array-backed FIFO-ish queue guarded by ``one_big_mutex``.

    Layout mirrors the compiled ``fd_queue_t``: a descriptor slot holds
    the queue struct pointer; the struct is ``[nelts, capacity,
    data...]`` with two words per element (``sd``, ``p``).  The programs
    address everything through the struct base register and include the
    bounds checks compiled Apache performs, so the instruction stream —
    and hence Table 3's emulation cost — resembles the real critical
    section rather than a toy.  Push appends at ``data[nelts]``; pop
    removes ``data[--nelts]`` (LIFO, exactly as in the snippet the paper
    quotes).
    """

    ELEM_WORDS = 2
    HEADER_WORDS = 2  # nelts, capacity

    def __init__(self, memory: Memory, capacity: int = 64):
        self.capacity = capacity
        base = memory.alloc(self.HEADER_WORDS + capacity * self.ELEM_WORDS)
        self.base_addr = base
        self.nelts_addr = base
        self.capacity_addr = base + 1
        self.data_addr = base + self.HEADER_WORDS
        memory.store(self.capacity_addr, capacity)
        # The descriptor slot: the fd_queue_t* the functions receive.
        self.desc_addr = memory.alloc(1)
        memory.store(self.desc_addr, base)
        self.push_program = self._build_push()
        self.pop_program = self._build_pop()
        self.use_program = build_use_values()

    def _build_push(self) -> Program:
        asm = Assembler("ap_queue_push")
        # r0 = sd, r1 = p (computed before entering the critical section)
        asm.emit(
            Mov(R5, Mem(self.desc_addr)),            # r5 = queue
            Mov(R2, Mem(0, base=R5)),                # r2 = queue->nelts
            Cmp(R2, Mem(1, base=R5)),                # full?
            Jge("full"),
            Lea(R3, Mem(self.HEADER_WORDS, base=R5, index=R2, scale=self.ELEM_WORDS)),
            Cmp(Mem(0, base=R3), Imm(NULL)),         # slot sanity check
            Mov(Mem(0, base=R3), R0),                # elem->sd = sd
            Mov(Mem(1, base=R3), R1),                # elem->p = p
            Inc(Mem(0, base=R5)),                    # queue->nelts++
            Label("full"),
        )
        return asm.build()

    def _build_pop(self) -> Program:
        asm = Assembler("ap_queue_pop")
        asm.emit(
            Mov(R5, Mem(self.desc_addr)),            # r5 = queue
            Cmp(Mem(0, base=R5), Imm(0)),            # empty?
            Jz("empty"),
            Dec(Mem(0, base=R5)),                    # --queue->nelts
            Mov(R2, Mem(0, base=R5)),                # r2 = queue->nelts
            Lea(R3, Mem(self.HEADER_WORDS, base=R5, index=R2, scale=self.ELEM_WORDS)),
            Mov(R0, Mem(0, base=R3)),                # *sd = elem->sd
            Mov(R1, Mem(1, base=R3)),                # *p = elem->p
            Label("empty"),
        )
        return asm.build()

    # Convenience accessors for tests
    def length(self, memory: Memory) -> int:
        return memory.load(self.nelts_addr)


def build_use_values(reads: int = 2) -> Program:
    """The consumer's first post-critical-section instructions.

    Dereferences the pointers returned in r0 (and r1), which is how a
    worker thread starts using a popped connection.  Reading r0 as a
    base register is a *use* of the consumed value.
    """
    asm = Assembler("use_popped_values")
    regs = [R4, R5, R2, R3]
    for i in range(min(reads, len(regs))):
        src = Mem(0, base=(R0 if i % 2 == 0 else R1))
        asm.emit(Mov(regs[i], src))
    return asm.build()


class SharedCounter:
    """Fig 2: a counter incremented by every thread's critical section."""

    def __init__(self, memory: Memory):
        self.count_addr = memory.alloc(1)
        asm = Assembler("count_increment")
        asm.emit(Inc(Mem(self.count_addr)))
        self.increment_program = asm.build()

    def value(self, memory: Memory) -> int:
        return memory.load(self.count_addr)


class FreeListAllocator:
    """Fig 3: a LIFO free list; ``mem_free`` produces, ``mem_alloc`` consumes.

    Blocks are chained through their word 0.  The pattern is isomorphic
    to producer/consumer — the detector must classify it as no-flow via
    the producer/consumer role lists.
    """

    def __init__(self, memory: Memory, blocks: int = 16, block_words: int = 4):
        self.head_addr = memory.alloc(1)
        self.block_addrs = [memory.alloc(block_words) for _ in range(blocks)]
        # Pre-populate the free list with all blocks.
        prev = NULL
        for addr in self.block_addrs:
            memory.store(addr, prev)
            prev = addr
        memory.store(self.head_addr, prev)
        self.free_program = self._build_free()
        self.alloc_program = self._build_alloc()
        self.use_program = build_use_block()

    def _build_free(self) -> Program:
        asm = Assembler("mem_free")
        # r0 = block to free
        asm.emit(
            Mov(R1, Mem(self.head_addr)),  # r1 = head
            Mov(Mem(0, base=R0), R1),      # block->next = head
            Mov(Mem(self.head_addr), R0),  # head = block
        )
        return asm.build()

    def _build_alloc(self) -> Program:
        asm = Assembler("mem_alloc")
        asm.emit(
            Mov(R0, Mem(self.head_addr)),  # r0 = head
            Cmp(R0, Imm(NULL)),
            Jz("empty"),
            Mov(R1, Mem(0, base=R0)),      # r1 = head->next
            Mov(Mem(self.head_addr), R1),  # head = head->next
            Label("empty"),
        )
        return asm.build()

    def head(self, memory: Memory) -> int:
        return memory.load(self.head_addr)


def build_use_block() -> Program:
    """Post-CS use of an allocated block: write into it (computed data)."""
    asm = Assembler("use_block")
    asm.emit(Mov(Mem(1, base=R0), Imm(7)))  # block->field = constant
    return asm.build()


class LinkedQueue:
    """A singly-linked FIFO queue in the style of ``sys/queue.h``.

    Elements are memory blocks whose word 0 is the link.  Dequeue
    includes §3.3.2's sanity pattern: after unlinking, the dequeuer
    pushes NULL through ``elem->next`` into the head — an *immediate
    propagation chain* that must not create transaction flow when a
    later consumer reads the NULL head.
    """

    def __init__(self, memory: Memory):
        self.head_addr = memory.alloc(1)
        self.tail_addr = memory.alloc(1)
        memory.store(self.head_addr, NULL)
        memory.store(self.tail_addr, NULL)
        self.enqueue_program = self._build_enqueue()
        self.dequeue_program = self._build_dequeue()
        self.use_program = build_use_values(reads=1)

    def _build_enqueue(self) -> Program:
        asm = Assembler("slist_enqueue")
        # r0 = element to enqueue
        asm.emit(
            Mov(Mem(0, base=R0), Imm(NULL)),   # elem->next = NULL
            Cmp(Mem(self.tail_addr), Imm(NULL)),
            Jnz("nonempty"),
            Mov(Mem(self.head_addr), R0),      # head = elem
            Mov(Mem(self.tail_addr), R0),      # tail = elem
            Jmp("done"),
            Label("nonempty"),
            Mov(R1, Mem(self.tail_addr)),      # r1 = tail
            Mov(Mem(0, base=R1), R0),          # tail->next = elem
            Mov(Mem(self.tail_addr), R0),      # tail = elem
            Label("done"),
        )
        return asm.build()

    def _build_dequeue(self) -> Program:
        asm = Assembler("slist_dequeue")
        asm.emit(
            Mov(R0, Mem(self.head_addr)),      # r0 = head
            Cmp(R0, Imm(NULL)),
            Jz("empty"),
            Mov(R1, Mem(0, base=R0)),          # r1 = head->next
            Mov(Mem(self.head_addr), R1),      # head = head->next
            Cmp(Mem(self.head_addr), Imm(NULL)),
            Jnz("done"),
            Mov(Mem(self.tail_addr), Imm(NULL)),  # queue drained
            Label("done"),
            Mov(Mem(0, base=R0), Imm(NULL)),   # sanity: clear elem->next
            Label("empty"),
        )
        return asm.build()

    def head(self, memory: Memory) -> int:
        return memory.load(self.head_addr)


class TailQueue:
    """A doubly-linked FIFO queue in the style of ``sys/queue.h`` TAILQ.

    Elements are memory blocks: word 0 = next, word 1 = prev, payload
    after.  Insert at tail, remove at head.  §3.3.2 reports verifying
    the flow-detection algorithm on both singly- and doubly-linked
    ``sys/queue.h`` structures; this is the doubly-linked one, with the
    extra back-pointer maintenance that produces additional MOV chains
    the algorithm must propagate through correctly.
    """

    NEXT = 0
    PREV = 1

    def __init__(self, memory: Memory):
        self.head_addr = memory.alloc(1)
        self.tail_addr = memory.alloc(1)
        memory.store(self.head_addr, NULL)
        memory.store(self.tail_addr, NULL)
        self.insert_program = self._build_insert_tail()
        self.remove_program = self._build_remove_head()
        self.use_program = build_use_values(reads=1)

    def _build_insert_tail(self) -> Program:
        asm = Assembler("tailq_insert_tail")
        # r0 = element
        asm.emit(
            Mov(Mem(self.NEXT, base=R0), Imm(NULL)),   # elem->next = NULL
            Mov(R1, Mem(self.tail_addr)),              # r1 = tail
            Mov(Mem(self.PREV, base=R0), R1),          # elem->prev = tail
            Cmp(R1, Imm(NULL)),
            Jz("was_empty"),
            Mov(Mem(self.NEXT, base=R1), R0),          # tail->next = elem
            Jmp("link_tail"),
            Label("was_empty"),
            Mov(Mem(self.head_addr), R0),              # head = elem
            Label("link_tail"),
            Mov(Mem(self.tail_addr), R0),              # tail = elem
        )
        return asm.build()

    def _build_remove_head(self) -> Program:
        asm = Assembler("tailq_remove_head")
        asm.emit(
            Mov(R0, Mem(self.head_addr)),              # r0 = head
            Cmp(R0, Imm(NULL)),
            Jz("empty"),
            Mov(R1, Mem(self.NEXT, base=R0)),          # r1 = head->next
            Mov(Mem(self.head_addr), R1),              # head = next
            Cmp(R1, Imm(NULL)),
            Jnz("fix_prev"),
            Mov(Mem(self.tail_addr), Imm(NULL)),       # queue drained
            Jmp("sanity"),
            Label("fix_prev"),
            Mov(Mem(self.PREV, base=R1), Imm(NULL)),   # next->prev = NULL
            Label("sanity"),
            Mov(Mem(self.NEXT, base=R0), Imm(NULL)),
            Mov(Mem(self.PREV, base=R0), Imm(NULL)),
            Label("empty"),
        )
        return asm.build()

    def head(self, memory: Memory) -> int:
        return memory.load(self.head_addr)

    def tail(self, memory: Memory) -> int:
        return memory.load(self.tail_addr)


class SlotShuffleQueue:
    """Element relocation inside a shared structure (§3.2's priority queue).

    ``shuffle`` moves the element at slot A to slot B inside the
    critical section; the associated transaction context must travel
    with it so a later pop from slot B still sees the producer's
    context.
    """

    def __init__(self, memory: Memory, slots: int = 8):
        self.slots_addr = memory.alloc(slots)
        self.slot_count = slots
        self.store_program = self._build_store()
        self.shuffle_program = self._build_shuffle()
        self.load_program = self._build_load()
        self.use_program = build_use_values(reads=1)

    def _build_store(self) -> Program:
        asm = Assembler("slot_store")
        # r0 = value, r1 = slot index
        asm.emit(Mov(Mem(self.slots_addr, index=R1), R0))
        return asm.build()

    def _build_shuffle(self) -> Program:
        asm = Assembler("slot_shuffle")
        # r0 = from index, r1 = to index
        asm.emit(
            Mov(R2, Mem(self.slots_addr, index=R0)),
            Mov(Mem(self.slots_addr, index=R1), R2),
            Mov(Mem(self.slots_addr, index=R0), Imm(NULL)),
        )
        return asm.build()

    def _build_load(self) -> Program:
        asm = Assembler("slot_load")
        # r1 = slot index; result in r0
        asm.emit(Mov(R0, Mem(self.slots_addr, index=R1)))
        return asm.build()
