"""Tomcat-like servlet container."""

from repro.apps.tomcat.container import Servlet, ServletCache, TomcatServer

__all__ = ["TomcatServer", "Servlet", "ServletCache"]
