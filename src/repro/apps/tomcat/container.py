"""The Tomcat analog: a servlet container (§8.4).

One handler thread per (persistent) upstream connection dispatches
requests to :class:`Servlet` objects.  Each TPC-W interaction is a
separate servlet, so each has a distinct call path — which is what lets
Whodunit extend a separate transaction context from Tomcat into MySQL
per interaction (§8.4).

The container owns a :class:`ServletCache` implementing the TPC-W
clause-6.3.3.1 result caching the paper adds as its optimisation: when
``caching`` is enabled and a servlet declares its results cacheable,
execution is skipped on a fresh cache entry.  The container also serves
static objects (book images) without servlet dispatch.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.channels.rpc import call as rpc_call
from repro import telemetry
from repro.channels.rpc import RetryPolicy, RpcTimeout, recv_request, send_response
from repro.channels.socket import Accept, Connection, Listener
from repro.core.profiler import OverheadModel, ProfilerMode, StageRuntime, work
from repro.sim import CPU, Kernel
from repro.sim.pool import Get, ResourcePool
from repro.sim.process import CurrentThread, SimThread, frame

DB_REQUEST_BYTES = 400


class Servlet:
    """Base servlet: override :meth:`run` with the interaction logic.

    ``run`` is a generator yielding simulation syscalls and returning
    ``(payload, size_bytes)`` for the HTTP response.
    """

    name = "Servlet"
    cacheable = False
    cache_ttl: Optional[float] = None  # None = cache forever

    def cache_key(self, param: Any) -> Any:
        return (self.name, param)

    def cache_ttl_for(self, param: Any) -> Optional[float]:
        """TTL for one key; None means the entry never expires."""
        return self.cache_ttl

    def run(self, container: "TomcatServer", thread: SimThread, param: Any) -> Iterator:
        raise NotImplementedError
        yield  # pragma: no cover


class ServletCache:
    """TTL result cache for servlet output (clause 6.3.3.1 of TPC-W)."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._entries: Dict[Any, Tuple[Any, int, Optional[float]]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: Any) -> Optional[Tuple[Any, int]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        payload, size, expires = entry
        if expires is not None and self.kernel.now >= expires:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return payload, size

    def insert(self, key: Any, payload: Any, size: int, ttl: Optional[float]) -> None:
        expires = None if ttl is None else self.kernel.now + ttl
        self._entries[key] = (payload, size, expires)

    def __len__(self) -> int:
        return len(self._entries)


class TomcatServer:
    """Servlet container with a database connection pool."""

    def __init__(
        self,
        kernel: Kernel,
        servlets: Dict[str, Servlet],
        db_listener: Optional[Listener] = None,
        db_connections: int = 24,
        caching: bool = False,
        mode: ProfilerMode = ProfilerMode.WHODUNIT,
        overhead: Optional[OverheadModel] = None,
        static_size_of: Callable[[Any], int] = lambda key: 8192,
        static_cost: float = 60e-6,
        listen_latency: float = 100e-6,
        name: str = "tomcat",
        db_retry: Optional[RetryPolicy] = None,
    ):
        self.kernel = kernel
        self.servlets = dict(servlets)
        self.caching = caching
        self.db_retry = db_retry
        self.db_timeouts = 0
        self.stage = StageRuntime(name, mode=mode, overhead=overhead)
        self.cpu = CPU(kernel, name=f"{name}-cpu")
        self.listener = Listener(kernel, latency=listen_latency, name=f"{name}-listen")
        self.cache = ServletCache(kernel)
        self.static_size_of = static_size_of
        self.static_cost = static_cost
        self.requests_served = 0
        self.db_calls = 0
        self.db_pool: Optional[ResourcePool] = None
        self._db_listener = db_listener
        self._db_connections = db_connections

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._db_listener is not None:
            connections = [
                self._db_listener.connect() for _ in range(self._db_connections)
            ]
            self.db_pool = ResourcePool(self.kernel, connections, name="db-pool")
        acceptor = self.kernel.spawn(
            self._accept_loop(), name="tomcat-acceptor", stage=self.stage
        )
        acceptor.daemon = True

    def _accept_loop(self) -> Iterator:
        yield CurrentThread()
        count = 0
        while True:
            connection = yield Accept(self.listener)
            count += 1
            telemetry.admit(self.stage.name, self.kernel, {"connection": count})
            handler = self.kernel.spawn(
                self._connection_loop(connection),
                name=f"tomcat-conn-{count}",
                stage=self.stage,
            )
            handler.daemon = True

    # ------------------------------------------------------------------
    def _connection_loop(self, connection: Connection) -> Iterator:
        thread = yield CurrentThread()
        with frame(thread, "http_processor"):
            while True:
                request = yield from recv_request(thread, connection.to_server)
                payload = request.payload
                kind = payload[0]
                if kind == "close":
                    return
                with frame(thread, "service"):
                    if kind == "IMG":
                        body, size = yield from self._serve_static(thread, payload[1])
                    else:
                        body, size = yield from self._dispatch(
                            thread, payload[1], payload[2] if len(payload) > 2 else None
                        )
                yield from send_response(thread, connection.to_client, request, body, size)
                self.requests_served += 1
                thread.tran_ctxt = None

    def _serve_static(self, thread: SimThread, key: Any) -> Iterator:
        size = self.static_size_of(key)
        with frame(thread, "default_servlet"):
            yield from work(thread, self.cpu, self.static_cost)
        return ("IMG", key), size

    def _dispatch(self, thread: SimThread, servlet_name: str, param: Any) -> Iterator:
        servlet = self.servlets.get(servlet_name)
        if servlet is None:
            yield from work(thread, self.cpu, self.static_cost)
            return ("404", servlet_name), 512
        with frame(thread, servlet.name):
            if self.caching and servlet.cacheable:
                cached = self.cache.lookup(servlet.cache_key(param))
                if cached is not None:
                    payload, size = cached
                    # Serving from cache still renders the page body.
                    yield from work(thread, self.cpu, 0.3e-3)
                    return payload, size
            payload, size = yield from servlet.run(self, thread, param)
            if self.caching and servlet.cacheable:
                self.cache.insert(
                    servlet.cache_key(param),
                    payload,
                    size,
                    servlet.cache_ttl_for(param),
                )
        return payload, size

    # ------------------------------------------------------------------
    # Services for servlets
    # ------------------------------------------------------------------
    def query(self, thread: SimThread, plan) -> Iterator:
        """Issue one database query through the connection pool.

        With a ``db_retry`` policy, a lost request or response is
        retransmitted by the RPC layer; exhausting the retry budget
        yields an error response instead of raising, so one lossy query
        degrades the page it belongs to rather than killing the
        connection-handler thread.  A pooled connection whose stale
        response is still in flight is safe to reuse: the RPC layer
        validates each response against the request synopsis of the call
        in flight and discards mismatches.
        """
        if self.db_pool is None:
            raise RuntimeError("container started without a database")
        connection = yield Get(self.db_pool)
        try:
            with frame(thread, "executeQuery"):
                try:
                    response = yield from rpc_call(
                        thread,
                        connection.to_server,
                        connection.to_client,
                        plan,
                        DB_REQUEST_BYTES,
                        retry=self.db_retry,
                    )
                except RpcTimeout:
                    self.db_timeouts += 1
                    self.db_calls += 1
                    return ("error", "db-timeout", plan.name)
        finally:
            self.db_pool.put(connection)
        self.db_calls += 1
        return response
