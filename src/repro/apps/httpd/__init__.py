"""Apache-like multithreaded web server."""

from repro.apps.httpd.server import HttpdConfig, HttpdServer

__all__ = ["HttpdServer", "HttpdConfig"]
