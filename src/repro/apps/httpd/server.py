"""The Apache 2.x analog: listener + worker pool over a shared queue.

Transactions flow through shared memory exactly as in §2.2/§8.1: the
listener thread accepts a connection and pushes it into the shared
``fd_queue`` (a VM critical section, Fig 1); a worker thread pops it and
processes the connection's requests.  Whodunit's flow detector hands the
listener's transaction context (its call path through ``ap_queue_push``)
to the worker, so all worker samples are annotated with the flow —
Fig 8's dashed edge.

The server also exercises a synchronized memory allocator (its
``apr_pools`` analog, Fig 3) on every request; the detector must
classify it no-flow (§8.1: "Whodunit also detects a synchronized memory
allocator in Apache, but it does not satisfy the rules of transaction
flow").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro import telemetry
from repro.channels.message import Message
from repro.channels.shared_queue import SharedMemoryRegion, SharedQueue
from repro.channels.socket import Accept, Connection, Listener, Recv, Send
from repro.core.profiler import OverheadModel, ProfilerMode, StageRuntime, work
from repro.sim import CPU, Kernel
from repro.sim.process import CurrentThread, SimThread, frame
from repro.sim.sync import Acquire, Mutex, Release
from repro.vm.programs import FreeListAllocator
from repro.workloads.clients import CLOSE
from repro.workloads.webtrace import WebTrace


class HttpdConfig:
    """Cost model of the simulated Apache (seconds of CPU)."""

    def __init__(
        self,
        workers: int = 8,
        queue_capacity: int = 256,
        accept_cost: float = 15e-6,
        parse_cost: float = 25e-6,
        response_base_cost: float = 20e-6,
        per_byte_cost: float = 2.2e-9,
        network_latency: float = 100e-6,
        allocator_blocks: int = 32,
        use_allocator: bool = True,
    ):
        self.workers = workers
        self.queue_capacity = queue_capacity
        self.accept_cost = accept_cost
        self.parse_cost = parse_cost
        self.response_base_cost = response_base_cost
        self.per_byte_cost = per_byte_cost
        self.network_latency = network_latency
        self.allocator_blocks = allocator_blocks
        self.use_allocator = use_allocator


class HttpdServer:
    """A threaded web server serving a static corpus from a trace."""

    def __init__(
        self,
        kernel: Kernel,
        trace: WebTrace,
        mode: ProfilerMode = ProfilerMode.WHODUNIT,
        config: Optional[HttpdConfig] = None,
        overhead: Optional[OverheadModel] = None,
        name: str = "httpd",
    ):
        self.kernel = kernel
        self.trace = trace
        self.config = config or HttpdConfig()
        self.stage = StageRuntime(name, mode=mode, overhead=overhead)
        self.cpu = CPU(kernel, name=f"{name}-cpu")
        self.listener_socket = Listener(
            kernel, latency=self.config.network_latency, name=f"{name}-listen"
        )
        self.region = SharedMemoryRegion(self.cpu)
        self.queue = SharedQueue(
            self.region, capacity=self.config.queue_capacity, name=name
        )
        self.alloc_mutex = Mutex(f"{name}.pool_mutex")
        self.allocator = FreeListAllocator(
            self.region.machine.memory, blocks=self.config.allocator_blocks
        )
        self._connections: Dict[int, Connection] = {}
        self._next_sd = 1000
        self._next_pool = 1
        self.bytes_sent = 0
        self.requests_served = 0
        self.connections_accepted = 0
        self.threads: List[SimThread] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        listener = self.kernel.spawn(
            self._listener_loop(), name="httpd-listener", stage=self.stage
        )
        listener.daemon = True
        self.threads.append(listener)
        for i in range(self.config.workers):
            worker = self.kernel.spawn(
                self._worker_loop(), name=f"httpd-worker-{i}", stage=self.stage
            )
            worker.daemon = True
            self.threads.append(worker)

    # ------------------------------------------------------------------
    # Listener thread: accept + ap_queue_push (the producer of Fig 1)
    # ------------------------------------------------------------------
    def _listener_loop(self) -> Iterator:
        thread = yield CurrentThread()
        with frame(thread, "main"):
            with frame(thread, "listener_thread"):
                while True:
                    with frame(thread, "apr_socket_accept"):
                        connection = yield Accept(self.listener_socket)
                        yield from work(thread, self.cpu, self.config.accept_cost)
                    sd = self._register(connection)
                    pool = self._next_pool
                    self._next_pool += 1
                    self.connections_accepted += 1
                    telemetry.admit(self.stage.name, self.kernel, {"sd": sd})
                    with frame(thread, "ap_queue_push"):
                        yield from self.queue.push(thread, sd, pool)

    def _register(self, connection: Connection) -> int:
        sd = self._next_sd
        self._next_sd += 1
        self._connections[sd] = connection
        return sd

    # ------------------------------------------------------------------
    # Worker threads: ap_queue_pop + ap_process_connection (the consumer)
    # ------------------------------------------------------------------
    def _worker_loop(self) -> Iterator:
        thread = yield CurrentThread()
        with frame(thread, "main"):
            with frame(thread, "worker_thread"):
                while True:
                    thread.tran_ctxt = None
                    with frame(thread, "ap_queue_pop"):
                        sd, _pool = yield from self.queue.pop(thread)
                    connection = self._connections.pop(sd)
                    with frame(thread, "ap_process_connection"):
                        yield from self._process_connection(thread, connection)

    def _process_connection(self, thread: SimThread, connection: Connection) -> Iterator:
        while True:
            message = yield Recv(connection.to_server)
            verb, object_id = message.payload
            if verb == CLOSE:
                return
            block = None
            if self.config.use_allocator:
                block = yield from self._apr_palloc(thread)
            with frame(thread, "ap_process_http_request"):
                yield from work(thread, self.cpu, self.config.parse_cost)
            size = self.trace.size_of(object_id)
            with frame(thread, "sendfile"):
                yield from work(
                    thread,
                    self.cpu,
                    self.config.response_base_cost + size * self.config.per_byte_cost,
                )
                yield Send(connection.to_client, Message(object_id, size))
            self.bytes_sent += size
            self.requests_served += 1
            if block:  # NULL (exhausted pool) is never freed
                yield from self._apr_pfree(thread, block)

    # ------------------------------------------------------------------
    # The apr_pools-like synchronized allocator (Fig 3 pattern)
    # ------------------------------------------------------------------
    def _apr_palloc(self, thread: SimThread) -> Iterator:
        with frame(thread, "apr_palloc"):
            yield Acquire(self.alloc_mutex)
            window = yield from self.region.run_critical_section(
                thread, self.alloc_mutex, self.allocator.alloc_program, ()
            )
            block = self.region.registers_of(thread).read(0)
            yield Release(self.alloc_mutex)
            yield from self.region.run_use_window(
                thread, window, self.allocator.use_program
            )
        return block

    def _apr_pfree(self, thread: SimThread, block: int) -> Iterator:
        with frame(thread, "apr_pool_destroy"):
            yield Acquire(self.alloc_mutex)
            yield from self.region.run_critical_section(
                thread, self.alloc_mutex, self.allocator.free_program, (block,)
            )
            yield Release(self.alloc_mutex)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def throughput_mbps(self, since: float = 0.0) -> float:
        elapsed = self.kernel.now - since
        if elapsed <= 0:
            return 0.0
        return self.bytes_sent * 8 / elapsed / 1e6
