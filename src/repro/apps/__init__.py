"""Simulated multi-tier applications: the paper's case-study subjects.

- :mod:`repro.apps.httpd` — Apache-like threaded web server (shared
  memory flow, §8.1, §9.2);
- :mod:`repro.apps.proxy` — Squid-like event-driven proxy cache (§8.2,
  §9.3);
- :mod:`repro.apps.haboob` — Haboob-like SEDA web server (§8.3, §9.3);
- :mod:`repro.apps.db` — MySQL-like storage engine with MyISAM/InnoDB
  locking (§8.1, §8.4);
- :mod:`repro.apps.tomcat` — servlet container with the fourteen TPC-W
  servlets (§8.4);
- :mod:`repro.apps.tpcw` — the full three-tier bookstore harness
  (§8.4, §9.1, Table 1/2, Figures 11/12).
"""
