"""TPC-W browsing-mix client emulation.

Closed-loop emulated browsers (EBs): each picks an interaction from the
browsing mix, issues it through the front tier (Squid), fetches the
page's static images, records the interaction's response time, thinks
(negative-exponential think time, mean 7 s per the TPC-W spec), and
repeats.  Interactions per minute from the :class:`TxLog` are the
throughput metric of Fig 12.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.apps.tpcw.model import (
    IMAGES_PER_PAGE,
    MIXES,
    NUM_ITEMS,
    TpcwModel,
)
from repro.channels.message import Message
from repro.channels.rpc import RetryPolicy
from repro.channels.socket import Connection, Listener, Recv, Send, TIMED_OUT
from repro.sim import Delay, Kernel
from repro.sim.process import CurrentThread
from repro.sim.rng import Rng
from repro.workloads.clients import TxLog

PAGE_REQUEST_BYTES = 450
IMAGE_REQUEST_BYTES = 350
DEFAULT_THINK_MEAN = 7.0


class TpcwClientPool:
    """Emulated browsers driving the bookstore through the front tier."""

    def __init__(
        self,
        kernel: Kernel,
        listener: Listener,
        model: TpcwModel,
        clients: int = 50,
        think_mean: float = DEFAULT_THINK_MEAN,
        rng: Optional[Rng] = None,
        images_per_page: int = IMAGES_PER_PAGE,
        mix: str = "browsing",
        retry: Optional[RetryPolicy] = None,
    ):
        if mix not in MIXES:
            raise ValueError(f"unknown mix {mix!r}; one of {sorted(MIXES)}")
        self.kernel = kernel
        self.listener = listener
        self.model = model
        self.clients = clients
        self.think_mean = think_mean
        self.rng = rng or Rng(99)
        self.images_per_page = images_per_page
        self.mix_name = mix
        self.retry = retry
        self.log = TxLog()
        self.bytes_received = 0
        # Recovery accounting (all zero on a lossless run).
        self.resends = 0
        self.reconnects = 0
        self.stale_responses = 0
        self._mix: List[Tuple[str, float]] = sorted(MIXES[mix].items())

    # ------------------------------------------------------------------
    def start(self) -> None:
        for index in range(self.clients):
            thread = self.kernel.spawn(
                self._browser(index), name=f"eb-{index}"
            )
            thread.daemon = True

    def _browser(self, index: int) -> Iterator:
        yield CurrentThread()
        pick_rng = self.rng.stream(f"mix-{index}")
        think_rng = self.rng.stream(f"think-{index}")
        image_rng = self.rng.stream(f"img-{index}")
        # Ramp up over the first think period to avoid a thundering herd.
        yield Delay(think_rng.random() * self.think_mean * 0.5)
        connection = self.listener.connect()
        while True:
            interaction = pick_rng.weighted_pick(self._mix)
            param = self.model.param_for(interaction)
            start = self.kernel.now
            connection, response = yield from self._fetch(
                connection, ("TPCW", interaction, param), PAGE_REQUEST_BYTES
            )
            self.bytes_received += response.size
            for _ in range(self.images_per_page):
                image_id = image_rng.randint(0, NUM_ITEMS - 1)
                connection, image = yield from self._fetch(
                    connection, ("IMG", image_id), IMAGE_REQUEST_BYTES
                )
                self.bytes_received += image.size
            self.log.add(interaction, start, self.kernel.now)
            if self.think_mean > 0:
                yield Delay(think_rng.expovariate(1.0 / self.think_mean))

    def _fetch(self, connection: Connection, payload: Any, size: int) -> Iterator:
        """One request/response exchange; returns ``(connection, response)``.

        Without a retry policy this is the plain blocking exchange (the
        lossless-transport behaviour, unchanged).  With one, a browser
        recovers from message loss the way a real one does: bounded
        waits, re-sent requests, and — once the proxy's per-connection
        event state machine may be wedged (a forwarded request lost
        between tiers) — abandoning the connection and reconnecting,
        which gives the proxy a fresh state machine.  The loop is
        bounded by the simulation horizon, not an attempt cap: every
        attempt consumes at least one timeout of virtual time.
        """
        retry = self.retry
        if retry is None:
            yield Send(connection.to_server, Message(payload, size))
            response = yield Recv(connection.to_client)
            return connection, response
        while True:
            # Drain responses of abandoned earlier exchanges (duplicate
            # deliveries, responses that arrived after their timeout) so
            # the next receive pairs with *this* request.
            while connection.to_client.try_recv() is not None:
                self.stale_responses += 1
            for attempt in range(retry.retries + 1):
                if attempt:
                    self.resends += 1
                yield Send(connection.to_server, Message(payload, size))
                response = yield Recv(
                    connection.to_client, timeout=retry.timeout_for(attempt)
                )
                if response is not TIMED_OUT:
                    return connection, response
            self.reconnects += 1
            connection = self.listener.connect()
