"""TPC-W: the online bookstore benchmark (§8.4)."""

from repro.apps.tpcw.model import (
    BROWSING_MIX,
    DB_CPU_COST,
    INTERACTIONS,
    NUM_ITEMS,
    NUM_SUBJECTS,
    TpcwModel,
)
from repro.apps.tpcw.servlets import build_servlets
from repro.apps.tpcw.workload import TpcwClientPool
from repro.apps.tpcw.harness import TpcwResults, TpcwSystem

__all__ = [
    "TpcwModel",
    "INTERACTIONS",
    "BROWSING_MIX",
    "DB_CPU_COST",
    "NUM_ITEMS",
    "NUM_SUBJECTS",
    "build_servlets",
    "TpcwClientPool",
    "TpcwSystem",
    "TpcwResults",
]
