"""The full three-tier TPC-W system: Squid → Tomcat → MySQL (§8.4).

Assembles the bookstore exactly as the paper deploys it: all requests
flow through Squid (which caches the static book images), dynamic pages
are produced by the fourteen servlets in Tomcat, and persistent data
lives in the MySQL-like database.  The harness exposes the two
optimisations the paper derives from Whodunit's profile:

- ``item_engine=INNODB`` converts the item table to row-level locking
  (Fig 11's AdminConfirm improvement);
- ``caching=True`` enables clause-6.3.3.1 result caching for
  BestSellers/SearchResult (Fig 11/12's throughput improvement).

``profiler_mode`` selects the Table 2 column: OFF, CSPROF, WHODUNIT or
GPROF, applied to all three tiers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps.db.engine import Database, DatabaseServer
from repro.apps.db.locks import MYISAM, Table
from repro.apps.proxy.squid import SquidProxy
from repro.apps.tomcat.container import TomcatServer
from repro.apps.tpcw.model import (
    IMAGE_BYTES,
    INTERACTIONS,
    TpcwModel,
)
from repro.apps.tpcw.servlets import build_servlets
from repro.apps.tpcw.workload import TpcwClientPool
from repro.channels.rpc import RetryPolicy
from repro.core.context import TransactionContext
from repro.core.profiler import OverheadModel, ProfilerMode
from repro.core.stitch import StitchError, resolve_context, stitch_profiles
from repro.faults import FaultPlan, install_faults
from repro.sim import Kernel, Rng


class TpcwResults:
    """Measurements from one TPC-W run."""

    def __init__(self, system: "TpcwSystem", window_start: float, window_end: float):
        self.system = system
        self.window_start = window_start
        self.window_end = window_end
        self.log = system.clients.log

    # ------------------------------------------------------------------
    def throughput_tpm(self) -> float:
        """Interactions per minute in the measurement window (Fig 12)."""
        return self.log.throughput(self.window_start, self.window_end) * 60.0

    def mean_response(self, interaction: Optional[str] = None) -> float:
        return self.log.mean_response(interaction)

    def db_cpu_weights(self) -> Dict[str, float]:
        """Raw MySQL CPU profile weight per interaction.

        The unnormalised form of :meth:`db_cpu_share`; shard results
        return this so a sharded run can sum weights across shards
        before normalising once.
        """
        weights: Dict[str, float] = {}
        for label, cct in self.system.db.stage.ccts.items():
            name = self.system.classify_context(label)
            key = name if name is not None else "<other>"
            weights[key] = weights.get(key, 0.0) + cct.total_weight()
        return weights

    def db_cpu_share(self) -> Dict[str, float]:
        """% of MySQL CPU profile per interaction (Table 1, column 1)."""
        weights = self.db_cpu_weights()
        total = sum(weights.values())
        if total == 0:
            return {}
        return {name: 100.0 * value / total for name, value in weights.items()}

    def crosstalk_wait_ms(self) -> Dict[str, float]:
        """Mean crosstalk wait per executed interaction, in ms

        (Table 1, column 2): total lock wait attributed to the
        interaction type divided by its completed instances.
        """
        out: Dict[str, float] = {}
        for interaction in INTERACTIONS:
            count = self.log.count(interaction)
            if count == 0:
                continue
            total_wait = self.system.db.crosstalk.total_wait_of(interaction)
            out[interaction] = 1000.0 * total_wait / count
        return out

    def comm_overhead(self) -> Dict[str, int]:
        """Data vs piggy-backed context bytes across all stages (§9.1)."""
        stages = [
            self.system.squid.stage,
            self.system.tomcat.stage,
            self.system.db.stage,
        ]
        return {
            "data_bytes": sum(s.comm_data_bytes for s in stages),
            "context_bytes": sum(s.comm_context_bytes for s in stages),
        }

    def stitch(self, strict: Optional[bool] = None):
        """The run's stitched profile.

        ``strict`` defaults to True for a lossless run (any unresolvable
        synopsis is a bug and should abort loudly) and False when faults
        were injected (crash amnesia legitimately leaves unresolvable
        references; they degrade to ``<unresolved:...>`` placeholders and
        the profile reports its completeness ratio).
        """
        if strict is None:
            strict = self.system.faults is None
        return stitch_profiles(
            self.system._stages_by_name.values(), strict=strict
        )

    def stitch_completeness(self) -> float:
        """Fraction of synopsis references stitching could resolve."""
        return self.stitch(strict=False).completeness

    def fault_report(self) -> Dict[str, Any]:
        """Injection totals plus per-tier recovery counters."""
        system = self.system
        report: Dict[str, Any] = {
            "injected": (
                system.faults.report() if system.faults is not None else {}
            ),
            "client_resends": system.clients.resends,
            "client_reconnects": system.clients.reconnects,
            "client_stale_responses": system.clients.stale_responses,
            "db_timeouts": system.tomcat.db_timeouts,
        }
        for name, stage in system._stages_by_name.items():
            report[f"{name}_retransmits"] = stage.retransmits
            report[f"{name}_abandoned"] = stage.abandoned_requests
            report[f"{name}_violations"] = dict(stage.protocol_violations)
            report[f"{name}_crashes"] = stage.crashes
        return report


class TpcwSystem:
    """A complete, runnable TPC-W deployment."""

    def __init__(
        self,
        clients: int = 100,
        caching: bool = False,
        item_engine: str = MYISAM,
        profiler_mode: ProfilerMode = ProfilerMode.WHODUNIT,
        think_mean: float = 7.0,
        db_connections: int = 24,
        seed: int = 42,
        overhead: Optional[OverheadModel] = None,
        mix: str = "browsing",
        fault_plan: Any = None,
        fault_seed: int = 0,
        retry: Optional[RetryPolicy] = None,
    ):
        self.kernel = Kernel()
        # Faults must be installed before any endpoint exists: endpoints
        # capture their fault state at construction, like telemetry.
        self.faults = None
        if fault_plan is not None:
            plan = FaultPlan.parse(fault_plan)
            if not plan.is_noop:
                self.faults = install_faults(self.kernel, plan, fault_seed)
        self.retry = retry
        self.rng = Rng(seed)
        self.model = TpcwModel(self.rng.stream("model"))

        # --- database tier -------------------------------------------
        self.db = Database(self.kernel, mode=profiler_mode, overhead=overhead)
        for table_name, rows in [
            ("item", 10_000),
            ("author", 2_500),
            ("orders", 25_000),
            ("customer", 2_880),
            ("cc_xacts", 25_000),
            ("shopping_cart", 2_880),
        ]:
            engine = item_engine if table_name == "item" else MYISAM
            self.db.add_table(Table(table_name, rows=rows, engine=engine))
        self.db.crosstalk.set_classifier(self.classify_context)
        self.db_server = DatabaseServer(self.db)

        # --- application tier ----------------------------------------
        self.servlets = build_servlets(self.model)
        self.tomcat = TomcatServer(
            self.kernel,
            self.servlets,
            db_listener=self.db_server.listener,
            db_connections=db_connections,
            caching=caching,
            mode=profiler_mode,
            overhead=overhead,
            static_size_of=lambda key: IMAGE_BYTES,
            db_retry=retry,
        )

        # --- front tier ------------------------------------------------
        self.squid = SquidProxy(
            self.kernel,
            self.tomcat.listener,
            mode=profiler_mode,
            overhead=overhead,
            cacheable=lambda key: isinstance(key, tuple) and key[0] == "IMG",
        )

        # --- clients ----------------------------------------------------
        self.clients = TpcwClientPool(
            self.kernel,
            self.squid.listener,
            self.model,
            clients=clients,
            think_mean=think_mean,
            rng=self.rng.stream("clients"),
            mix=mix,
            retry=retry,
        )
        self._stages_by_name = {
            "squid": self.squid.stage,
            "tomcat": self.tomcat.stage,
            "mysql": self.db.stage,
        }
        if self.faults is not None:
            self.faults.schedule_crashes(self.kernel, self._stages_by_name)
        # Shared synopsis-resolution cache: classify_context runs on
        # every crosstalk wait event, and most contexts repeat.
        self._resolve_cache = {}
        self._started = False

    # ------------------------------------------------------------------
    @property
    def stages_by_name(self) -> Dict[str, Any]:
        """The per-tier stage runtimes, keyed by stage name."""
        return dict(self._stages_by_name)

    def save_profiles(
        self, directory: str, profile_format: str = "v1"
    ) -> Dict[str, str]:
        """Dump every tier's profile into ``directory``; returns the
        written paths keyed by stage name."""
        import os

        from repro.core.persist import save_stage

        suffix = ".profile.wdp" if profile_format == "v2" else ".profile.json"
        os.makedirs(directory, exist_ok=True)
        paths: Dict[str, str] = {}
        for name, stage in self._stages_by_name.items():
            path = os.path.join(directory, f"{name}{suffix}")
            save_stage(stage, path, profile_format=profile_format)
            paths[name] = path
        return paths

    # ------------------------------------------------------------------
    def classify_context(self, context: Any) -> Optional[str]:
        """Map a transaction context to its TPC-W interaction name."""
        if not isinstance(context, TransactionContext):
            return None
        try:
            resolved = resolve_context(
                context, self._stages_by_name, self._resolve_cache
            )
        except (StitchError, KeyError):
            return None
        for element in resolved.elements:
            if element in INTERACTIONS:
                return element
        return None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.db_server.start()
        self.tomcat.start()
        self.squid.start()
        self.clients.start()

    def run(self, duration: float = 120.0, warmup: float = 30.0) -> TpcwResults:
        """Run for ``warmup + duration`` virtual seconds and measure."""
        self.start()
        self.kernel.run(until=warmup)
        window_start = self.kernel.now
        self.kernel.run(until=warmup + duration)
        return TpcwResults(self, window_start, self.kernel.now)
