"""TPC-W bookstore model: interactions, mix weights, query cost model.

The fourteen interactions and the browsing-mix weights come from the
TPC-W specification.  The per-interaction database CPU costs are
calibrated so the browsing mix reproduces Table 1's MySQL CPU
distribution: share_i ∝ weight_i × cost_i, with BestSellers at ~51.5%
and SearchResult at ~43.3% of database CPU, and a mean demand around
50 ms — which in turn puts the uncached browsing mix's peak throughput
near the paper's 1184 interactions/minute (Fig 12).

Lock footprints mirror the schema behaviour §8.4 describes: most
interactions read the ``item`` table; AdminConfirm sorts order history
into a temporary table and *updates one row of item*, which under
MyISAM's table-wide locking serialises it against every reader;
BuyConfirm decrements stock, also writing ``item``.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.apps.db.engine import QueryPlan
from repro.sim.rng import Rng

NUM_ITEMS = 10_000
NUM_SUBJECTS = 24
NUM_CUSTOMERS = 2880
NUM_SEARCH_TERMS = 1000

INTERACTIONS: Tuple[str, ...] = (
    "AdminConfirm",
    "AdminRequest",
    "BestSellers",
    "BuyConfirm",
    "BuyRequest",
    "CustomerRegistration",
    "Home",
    "NewProducts",
    "OrderDisplay",
    "OrderInquiry",
    "ProductDetail",
    "SearchRequest",
    "SearchResult",
    "ShoppingCart",
)

# TPC-W interaction mixes (% of interactions).  The paper's evaluation
# uses the browsing mix; the shopping and ordering mixes are provided
# for completeness (clause 5.3 of the TPC-W specification).
BROWSING_MIX = {
    "Home": 29.00,
    "NewProducts": 11.00,
    "BestSellers": 11.00,
    "ProductDetail": 21.00,
    "SearchRequest": 12.00,
    "SearchResult": 11.00,
    "ShoppingCart": 2.00,
    "CustomerRegistration": 0.82,
    "BuyRequest": 0.75,
    "BuyConfirm": 0.69,
    "OrderInquiry": 0.30,
    "OrderDisplay": 0.25,
    "AdminRequest": 0.10,
    "AdminConfirm": 0.09,
}

SHOPPING_MIX = {
    "Home": 16.00,
    "NewProducts": 5.00,
    "BestSellers": 5.00,
    "ProductDetail": 17.00,
    "SearchRequest": 20.00,
    "SearchResult": 17.00,
    "ShoppingCart": 11.60,
    "CustomerRegistration": 3.00,
    "BuyRequest": 2.60,
    "BuyConfirm": 1.20,
    "OrderInquiry": 0.75,
    "OrderDisplay": 0.66,
    "AdminRequest": 0.10,
    "AdminConfirm": 0.09,
}

ORDERING_MIX = {
    "Home": 9.12,
    "NewProducts": 0.46,
    "BestSellers": 0.46,
    "ProductDetail": 12.35,
    "SearchRequest": 14.53,
    "SearchResult": 13.08,
    "ShoppingCart": 13.53,
    "CustomerRegistration": 12.86,
    "BuyRequest": 12.73,
    "BuyConfirm": 10.18,
    "OrderInquiry": 0.25,
    "OrderDisplay": 0.22,
    "AdminRequest": 0.12,
    "AdminConfirm": 0.11,
}

MIXES = {
    "browsing": BROWSING_MIX,
    "shopping": SHOPPING_MIX,
    "ordering": ORDERING_MIX,
}

# CPU cost of a short row update (the exclusive-lock part of a writing
# interaction).
UPDATE_COST = 2e-3

# Heavy sorting queries hold their table locks only for the scan that
# copies qualifying rows into a temporary table; the filesort then runs
# without table locks.  Fraction of the query's CPU spent in the locked
# scan:
SCAN_FRACTION = 0.2

# Database CPU seconds per interaction (calibrated to Table 1; see the
# module docstring).  share_i = weight_i * cost_i / Σ.
DB_CPU_COST = {
    "AdminConfirm": 0.467,
    "BestSellers": 0.240,
    "SearchResult": 0.202,
    "NewProducts": 0.0153,
    "BuyConfirm": 0.0030,
    "BuyRequest": 0.00205,
    "OrderDisplay": 0.00205,
    "OrderInquiry": 0.0015,
    "ShoppingCart": 0.0018,
    "Home": 0.0010,
    "SearchRequest": 0.00068,
    "ProductDetail": 0.00054,
    "CustomerRegistration": 0.00030,
    "AdminRequest": 0.00020,
}

# Tables each interaction reads / writes (writes are row-targeted).
DB_READS = {
    "AdminConfirm": ("orders",),
    "AdminRequest": ("item",),
    "BestSellers": ("item", "orders"),
    "BuyConfirm": ("customer",),
    "BuyRequest": ("customer", "item"),
    "CustomerRegistration": (),
    "Home": ("item", "customer"),
    "NewProducts": ("item", "author"),
    "OrderDisplay": ("orders", "customer"),
    "OrderInquiry": ("customer",),
    "ProductDetail": ("item",),
    "SearchRequest": ("item",),
    "SearchResult": ("item", "author"),
    "ShoppingCart": ("item",),
}

# Heavy query execution frames (what the db profile shows, Fig-8 style).
DB_FRAMES = {
    "AdminConfirm": ("filesort", "create_tmp_table", "update_item_row"),
    "BestSellers": ("do_select", "filesort"),
    "SearchResult": ("do_select", "filesort"),
    "NewProducts": ("do_select", "filesort"),
}
DEFAULT_FRAMES = ("do_select",)

PAGE_BYTES = {
    "Home": 6000,
    "NewProducts": 9000,
    "BestSellers": 9000,
    "ProductDetail": 7000,
    "SearchRequest": 3000,
    "SearchResult": 9000,
    "ShoppingCart": 5000,
    "CustomerRegistration": 3500,
    "BuyRequest": 4500,
    "BuyConfirm": 4000,
    "OrderInquiry": 3000,
    "OrderDisplay": 5500,
    "AdminRequest": 4000,
    "AdminConfirm": 3500,
}

# Tomcat-side CPU per dynamic page: roughly equal across interactions
# (§8.4: "the average resource usage at Tomcat by the different TPC-W
# transactions is roughly the same").
TOMCAT_SERVLET_COST = 2.5e-3

IMAGES_PER_PAGE = 2
IMAGE_BYTES = 9000


class TpcwModel:
    """Parameter generation for interactions (seeded)."""

    def __init__(self, rng: Rng):
        self.rng = rng
        self.subject_rng = rng.stream("subjects")
        self.item_rng = rng.stream("items")
        self.customer_rng = rng.stream("customers")
        self.search_rng = rng.stream("search")
        self._search_zipf = self.search_rng.zipf_table(NUM_SEARCH_TERMS, 0.9)

    # ------------------------------------------------------------------
    def subject(self) -> int:
        return self.subject_rng.randint(0, NUM_SUBJECTS - 1)

    def item_id(self) -> int:
        return self.item_rng.randint(0, NUM_ITEMS - 1)

    def customer_id(self) -> int:
        return self.customer_rng.randint(0, NUM_CUSTOMERS - 1)

    def search_param(self) -> Tuple[str, int]:
        """(search type, term): subject searches draw from the 24

        subjects; title/author searches draw zipf-popular terms."""
        kind = self.search_rng.choice(["subject", "title", "author"])
        if kind == "subject":
            return (kind, self.subject())
        return (kind, self.search_rng.zipf_pick(self._search_zipf))

    def param_for(self, interaction: str) -> Any:
        if interaction in ("BestSellers", "NewProducts"):
            return self.subject()
        if interaction == "SearchResult":
            return self.search_param()
        if interaction in ("ProductDetail", "AdminRequest", "AdminConfirm"):
            return self.item_id()
        if interaction in (
            "BuyRequest",
            "BuyConfirm",
            "CustomerRegistration",
            "OrderInquiry",
            "OrderDisplay",
            "ShoppingCart",
        ):
            return self.customer_id()
        return None

    # ------------------------------------------------------------------
    def query_plans(self, interaction: str, param: Any) -> List[QueryPlan]:
        """The database work one interaction issues, in statement order.

        Writing interactions issue their heavy read/sort work as a
        *separate statement* from the short row update, as MySQL
        executes them: the exclusive lock is only held for the update
        itself.  What makes AdminConfirm's crosstalk large (Table 1) is
        *acquiring* the MyISAM table-wide lock against a stream of
        readers, not holding it.
        """
        cost = DB_CPU_COST[interaction]
        frames = DB_FRAMES.get(interaction, DEFAULT_FRAMES)
        reads = DB_READS[interaction]
        if interaction in ("BestSellers", "SearchResult", "NewProducts"):
            scan = cost * SCAN_FRACTION
            return [
                QueryPlan(
                    f"{interaction}.scan",
                    reads=reads,
                    cpu_cost=scan,
                    frames=("do_select", "copy_to_tmp_table"),
                    response_bytes=500,
                ),
                QueryPlan(
                    f"{interaction}.sort",
                    reads=(),
                    cpu_cost=cost - scan,
                    frames=("do_select", "filesort"),
                    response_bytes=2500,
                ),
            ]
        if interaction == "AdminConfirm":
            heavy = cost - 2 * UPDATE_COST  # two update statements below
            scan = heavy * SCAN_FRACTION
            return [
                QueryPlan(
                    "AdminConfirm.scan",
                    reads=("orders",),
                    cpu_cost=scan,
                    frames=("do_select", "copy_to_tmp_table"),
                    response_bytes=500,
                ),
                QueryPlan(
                    "AdminConfirm.sort",
                    reads=(),
                    cpu_cost=heavy - scan,
                    frames=("filesort", "create_tmp_table"),
                    response_bytes=2500,
                ),
                QueryPlan(
                    "AdminConfirm.update",
                    writes=(("item", int(param)),),
                    cpu_cost=UPDATE_COST,
                    frames=("update_item_row",),
                    response_bytes=200,
                ),
                QueryPlan(
                    # AdminConfirm also rewrites the item's five
                    # related-items links — a second exclusive pass.
                    "AdminConfirm.related",
                    writes=tuple(("item", self.item_id()) for _ in range(5)),
                    cpu_cost=UPDATE_COST,
                    frames=("update_related_items",),
                    response_bytes=200,
                ),
            ]
        if interaction == "BuyConfirm":
            return [
                QueryPlan(
                    "BuyConfirm.select",
                    reads=("customer",),
                    cpu_cost=cost - UPDATE_COST,
                    frames=DEFAULT_FRAMES,
                    response_bytes=1500,
                ),
                QueryPlan(
                    "BuyConfirm.update",
                    writes=(
                        ("item", self.item_id()),
                        ("item", self.item_id()),
                        ("orders", self.customer_rng.randint(0, 10_000)),
                    ),
                    cpu_cost=UPDATE_COST,
                    frames=("update_stock",),
                    response_bytes=200,
                ),
            ]
        writes: Tuple[Tuple[str, int], ...] = ()
        if interaction == "CustomerRegistration":
            writes = (("customer", int(param)),)
        elif interaction == "ShoppingCart":
            writes = (("shopping_cart", int(param)),)
        return [
            QueryPlan(
                name=interaction,
                reads=reads,
                writes=writes,
                cpu_cost=cost,
                frames=frames,
                response_bytes=2500,
            )
        ]
