"""The fourteen TPC-W interactions as servlets.

Each interaction is a separate servlet class (as in the implementation
the paper profiles), so each has a distinct call path at Tomcat and
hence extends a distinct transaction context into MySQL.

BestSellers and SearchResult implement the clause-6.3.3.1 caching the
paper adds as its optimisation: BestSellers results (per subject) may be
cached for 30 seconds, SearchResult by-subject results for 30 seconds,
and by-title/by-author results forever.  Caching only takes effect when
the container is constructed with ``caching=True``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.apps.tomcat.container import Servlet, TomcatServer
from repro.apps.tpcw.model import (
    PAGE_BYTES,
    TOMCAT_SERVLET_COST,
    TpcwModel,
)
from repro.core.profiler import work
from repro.sim.process import SimThread, frame

RESULT_CACHE_TTL = 30.0  # clause 6.3.3.1: 30 seconds


class TpcwServlet(Servlet):
    """Generic TPC-W interaction servlet: render + one database query."""

    cacheable = False
    cache_ttl: Optional[float] = RESULT_CACHE_TTL

    def __init__(self, name: str, model: TpcwModel):
        self.name = name
        self.model = model
        self.page_bytes = PAGE_BYTES[name]
        self.executions = 0

    def run(self, container: TomcatServer, thread: SimThread, param: Any) -> Iterator:
        self.executions += 1
        with frame(thread, "doGet"):
            yield from work(thread, container.cpu, TOMCAT_SERVLET_COST / 2)
            for plan in self.model.query_plans(self.name, param):
                yield from container.query(thread, plan)
            with frame(thread, "render_page"):
                yield from work(thread, container.cpu, TOMCAT_SERVLET_COST / 2)
        return (self.name, param), self.page_bytes


class BestSellersServlet(TpcwServlet):
    """Heavy order-history sort; results cacheable per subject (30s)."""

    cacheable = True
    cache_ttl = RESULT_CACHE_TTL

    def cache_key(self, param: Any) -> Any:
        return ("BestSellers", param)  # param is the subject index


class SearchResultServlet(TpcwServlet):
    """Heavy search sort; by-subject cached 30s, title/author forever."""

    cacheable = True

    def cache_key(self, param: Any) -> Any:
        return ("SearchResult", param)

    def cache_ttl_for(self, param: Any) -> Optional[float]:
        kind, _ = param
        if kind == "subject":
            return RESULT_CACHE_TTL
        return None  # title/author results may be cached forever


def build_servlets(model: TpcwModel) -> Dict[str, Servlet]:
    """All fourteen interaction servlets, keyed by interaction name."""
    servlets: Dict[str, Servlet] = {}
    from repro.apps.tpcw.model import INTERACTIONS

    for name in INTERACTIONS:
        if name == "BestSellers":
            servlets[name] = BestSellersServlet(name, model)
        elif name == "SearchResult":
            servlets[name] = SearchResultServlet(name, model)
        else:
            servlets[name] = TpcwServlet(name, model)
    return servlets
