"""The database engine and its network front-end.

:class:`Database` executes :class:`QueryPlan`\\ s: it parses, takes the
locks the touched tables' engines require, burns the plan's CPU cost
under descriptive frames (``do_select``, ``filesort`` for the heavy
sorting queries of BestSellers/SearchResult/AdminConfirm), bumps a
shared statistics counter through a VM critical section (the pattern
§8.1 reports Whodunit finding — and correctly rejecting — in MySQL),
and releases.

Crucially for crosstalk, the locks are held *across* the CPU burst: on a
saturated database CPU a MyISAM table lock is therefore held for the
queueing delay too, which is what makes AdminConfirm's exclusive lock on
``item`` so expensive for everyone else (Table 1) and the InnoDB
conversion so effective (Fig 11).

:class:`DatabaseServer` is the MySQL network front: one server thread
per client connection (MySQL's thread-per-connection model), speaking
the RPC protocol of :mod:`repro.channels.rpc` so transaction contexts
arrive as synopses from the application server.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.apps.db.locks import Table, acquire_all, release_all
from repro import telemetry
from repro.channels.rpc import recv_request, send_response
from repro.channels.shared_queue import SharedMemoryRegion
from repro.channels.socket import Accept, Listener
from repro.core.profiler import OverheadModel, ProfilerMode, StageRuntime, work
from repro.sim import CPU, Kernel
from repro.sim.process import CurrentThread, SimThread, frame
from repro.sim.sync import Acquire, Mutex, Release
from repro.vm.programs import SharedCounter


class QueryPlan:
    """A declarative description of one SQL statement's execution."""

    def __init__(
        self,
        name: str,
        reads: Tuple[str, ...] = (),
        writes: Tuple[Tuple[str, int], ...] = (),
        cpu_cost: float = 1e-3,
        frames: Tuple[str, ...] = ("do_select",),
        response_bytes: int = 2000,
    ):
        self.name = name
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.cpu_cost = cpu_cost
        self.frames = tuple(frames)
        self.response_bytes = response_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<QueryPlan {self.name} cost={self.cpu_cost:.4f}s>"


class Database:
    """The storage engine of one database process."""

    PARSE_COST = 40e-6
    STATS_COST_GUARD = 5e-6

    def __init__(
        self,
        kernel: Kernel,
        mode: ProfilerMode = ProfilerMode.WHODUNIT,
        overhead: Optional[OverheadModel] = None,
        name: str = "mysql",
        type_of: Optional[Callable] = None,
    ):
        self.kernel = kernel
        self.stage = StageRuntime(name, mode=mode, overhead=overhead, type_of=type_of)
        self.cpu = CPU(kernel, name=f"{name}-cpu")
        self.tables: Dict[str, Table] = {}
        self.crosstalk = self.stage.crosstalk
        # The shared statistics counter (queries served), §8.1.
        self.region = SharedMemoryRegion(self.cpu)
        self.stats_mutex = Mutex(f"{name}.stats_mutex")
        self.stats_counter = SharedCounter(self.region.machine.memory)
        self.queries_executed = 0

    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        self.tables[table.name] = table
        self.crosstalk.observe(table.table_lock)
        return table

    def table(self, name: str) -> Table:
        return self.tables[name]

    def observe_row_locks(self, table_name: str, row_ids: List[int]) -> None:
        """Pre-create and observe row locks (so crosstalk sees them)."""
        table = self.tables[table_name]
        for row_id in row_ids:
            self.crosstalk.observe(table.row_lock(row_id))

    # ------------------------------------------------------------------
    def execute(self, thread: SimThread, plan: QueryPlan) -> Iterator:
        """Run one query to completion on behalf of ``thread``."""
        with frame(thread, "mysql_parse"):
            yield from work(thread, self.cpu, self.PARSE_COST)

        shared: List[Mutex] = []
        for table_name in sorted(set(plan.reads)):
            shared.extend(self.tables[table_name].read_locks())
        exclusive: List[Mutex] = []
        write_rows: Dict[str, List[int]] = {}
        for table_name, row_id in plan.writes:
            write_rows.setdefault(table_name, []).append(row_id)
        for table_name in sorted(write_rows):
            exclusive.extend(
                self.tables[table_name].write_locks(write_rows[table_name])
            )
        # A table locked exclusively need not also be locked shared.
        exclusive_set = set(exclusive)
        shared = [lock for lock in shared if lock not in exclusive_set]

        # No try/finally here: a yield inside finally breaks generator
        # close() on simulation teardown, and a failed query aborts the
        # whole simulation anyway.
        held = yield from acquire_all(thread, shared, exclusive)
        with frame(thread, "mysql_execute_command"):
            inner = list(plan.frames) or ["do_select"]
            yield from self._burn(thread, inner, plan.cpu_cost)
        yield from release_all(held)

        yield from self._bump_stats(thread)
        self.queries_executed += 1

    def _burn(self, thread: SimThread, frames: List[str], cost: float) -> Iterator:
        name = frames[0]
        with frame(thread, name):
            if len(frames) == 1:
                yield from work(thread, self.cpu, cost)
            else:
                yield from self._burn(thread, frames[1:], cost)

    def _bump_stats(self, thread: SimThread) -> Iterator:
        """Increment the shared query counter inside a VM critical

        section — the Fig 2 pattern, for the detector to classify.
        """
        yield Acquire(self.stats_mutex)
        yield from self.region.run_critical_section(
            thread, self.stats_mutex, self.stats_counter.increment_program, ()
        )
        yield Release(self.stats_mutex)


class DatabaseServer:
    """MySQL's network layer: thread-per-connection over the RPC channel."""

    def __init__(self, database: Database, latency: float = 100e-6):
        self.database = database
        self.kernel = database.kernel
        self.listener = Listener(self.kernel, latency=latency, name="mysql-listen")
        self.connections_served = 0

    def start(self) -> None:
        acceptor = self.kernel.spawn(
            self._accept_loop(), name="mysql-acceptor", stage=self.database.stage
        )
        acceptor.daemon = True

    def _accept_loop(self) -> Iterator:
        thread = yield CurrentThread()
        with frame(thread, "main"):
            while True:
                connection = yield Accept(self.listener)
                self.connections_served += 1
                telemetry.admit(
                    self.database.stage.name,
                    self.kernel,
                    {"connection": self.connections_served},
                )
                handler = self.kernel.spawn(
                    self._connection_loop(connection),
                    name=f"mysql-conn-{self.connections_served}",
                    stage=self.database.stage,
                )
                handler.daemon = True

    def _connection_loop(self, connection) -> Iterator:
        thread = yield CurrentThread()
        database = self.database
        with frame(thread, "main"):
            with frame(thread, "handle_connection"):
                while True:
                    request = yield from recv_request(thread, connection.to_server)
                    plan = request.payload
                    if plan is None:  # connection close
                        return
                    yield from database.execute(thread, plan)
                    with frame(thread, "net_send_ok"):
                        yield from send_response(
                            thread,
                            connection.to_client,
                            request,
                            ("rows", plan.name),
                            plan.response_bytes,
                        )
                    thread.tran_ctxt = None
