"""Storage-engine locking: MyISAM table locks vs InnoDB row locks.

§8.4's optimisation hinges on exactly this difference: MyISAM supports
only table-wide locking — readers take the table lock shared, writers
exclusive — while InnoDB locks individual rows and serves reads from a
consistent snapshot without blocking.  Converting the ``item`` table
from MyISAM to InnoDB is what cuts AdminConfirm's response time by
9–72% in Fig 11.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.sim.process import SimThread
from repro.sim.sync import READER_PRIORITY, Acquire, Mutex, Release

MYISAM = "myisam"
INNODB = "innodb"

# How long a MyISAM writer may be bypassed by new readers before the
# server stops admitting them (MySQL eventually boosts starving
# writers; unbounded starvation would never let AdminConfirm finish).
WRITER_STARVATION_LIMIT = 4.0


class Table:
    """One database table with its engine-specific locking.

    The MyISAM table lock uses the reader-priority policy: concurrent
    readers stream past a queued writer, so under a read-heavy mix a
    writer (AdminConfirm's item update) can wait a very long time —
    the pathology the paper's InnoDB conversion fixes.
    """

    def __init__(self, name: str, rows: int = 1000, engine: str = MYISAM):
        if engine not in (MYISAM, INNODB):
            raise ValueError(f"unknown engine {engine!r}")
        self.name = name
        self.rows = rows
        self.engine = engine
        self.table_lock = Mutex(
            f"{name}.table_lock",
            policy=READER_PRIORITY,
            writer_starvation_limit=WRITER_STARVATION_LIMIT,
        )
        self._row_locks: Dict[int, Mutex] = {}

    # ------------------------------------------------------------------
    def row_lock(self, row_id: int) -> Mutex:
        lock = self._row_locks.get(row_id)
        if lock is None:
            lock = Mutex(f"{self.name}.row[{row_id}]")
            self._row_locks[lock_key(row_id)] = lock
        return lock

    def convert(self, engine: str) -> None:
        """ALTER TABLE ... ENGINE=... (the paper's optimisation)."""
        if engine not in (MYISAM, INNODB):
            raise ValueError(f"unknown engine {engine!r}")
        self.engine = engine

    # ------------------------------------------------------------------
    # Lock acquisition plans
    # ------------------------------------------------------------------
    def read_locks(self) -> List[Mutex]:
        """Locks a reading query must hold (shared)."""
        if self.engine == MYISAM:
            return [self.table_lock]
        return []  # InnoDB: consistent non-locking reads

    def write_locks(self, row_ids: List[int]) -> List[Mutex]:
        """Locks a writing query must hold (exclusive)."""
        if self.engine == MYISAM:
            return [self.table_lock]
        return [self.row_lock(row_id) for row_id in sorted(set(row_ids))]

    def all_locks(self) -> List[Mutex]:
        return [self.table_lock] + list(self._row_locks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} engine={self.engine} rows={self.rows}>"


def lock_key(row_id: int) -> int:
    return int(row_id)


def acquire_all(thread: SimThread, shared: List[Mutex], exclusive: List[Mutex]) -> Iterator:
    """Acquire a query's locks in a global deterministic order.

    Ordering by lock name prevents deadlock between concurrent queries
    that touch the same tables in different textual orders.
    """
    plan = [(lock, True) for lock in shared] + [(lock, False) for lock in exclusive]
    plan.sort(key=lambda pair: pair[0].name)
    for lock, is_shared in plan:
        yield Acquire(lock, shared=is_shared)
    return [lock for lock, _ in plan]


def release_all(locks: List[Mutex]) -> Iterator:
    for lock in reversed(locks):
        yield Release(lock)
