"""MySQL-like database engine with table- and row-level locking."""

from repro.apps.db.locks import INNODB, MYISAM, Table
from repro.apps.db.engine import Database, DatabaseServer, QueryPlan

__all__ = ["Table", "MYISAM", "INNODB", "Database", "DatabaseServer", "QueryPlan"]
