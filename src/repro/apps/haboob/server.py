"""The Haboob analog: a SEDA web server (§8.3).

The stage graph matches Fig 10:

    ListenStage → HttpServer → ReadStage → HttpRecv → CacheStage
        CacheStage → WriteStage                (cache hit)
        CacheStage → MissStage → FileIOStage → WriteStage  (cache miss)

Each stage is a :class:`~repro.seda.SedaStage`; the SEDA middleware
stamps every queue element with the enqueuing thread's transaction
context, so ``WriteStage`` accumulates samples under two distinct
contexts — the hit path and the miss path — which is exactly the
separation Fig 10 reports (37.65% vs 46.58% of total CPU).  After
writing a response the connection re-enters ``ReadStage``; loop pruning
keeps contexts finite across persistent connections.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro import telemetry
from repro.apps.proxy.cache import LruCache
from repro.channels.message import Message
from repro.channels.socket import Accept, Connection, Listener, Recv, Send
from repro.core.profiler import OverheadModel, ProfilerMode, StageRuntime, work
from repro.seda import SedaStage
from repro.sim import CPU, Kernel
from repro.sim.disk import Disk, ReadDisk
from repro.sim.process import CurrentThread, frame
from repro.workloads.clients import CLOSE
from repro.workloads.webtrace import WebTrace


class HaboobConfig:
    """Cost model of the simulated Haboob (seconds of CPU)."""

    def __init__(
        self,
        accept_cost: float = 15e-6,
        http_server_cost: float = 10e-6,
        read_cost: float = 20e-6,
        parse_cost: float = 15e-6,
        cache_lookup_cost: float = 10e-6,
        miss_cost: float = 25e-6,
        disk_latency: float = 4e-3,
        disk_per_byte_cost: float = 1.2e-9,
        write_base_cost: float = 60e-6,
        write_per_byte_cost: float = 18e-9,
        cache_bytes: int = 16 * 1024 * 1024,
        client_latency: float = 100e-6,
        read_workers: int = 32,
        stage_workers: int = 4,
    ):
        self.accept_cost = accept_cost
        self.http_server_cost = http_server_cost
        self.read_cost = read_cost
        self.parse_cost = parse_cost
        self.cache_lookup_cost = cache_lookup_cost
        self.miss_cost = miss_cost
        self.disk_latency = disk_latency
        self.disk_per_byte_cost = disk_per_byte_cost
        self.write_base_cost = write_base_cost
        self.write_per_byte_cost = write_per_byte_cost
        self.cache_bytes = cache_bytes
        self.client_latency = client_latency
        self.read_workers = read_workers
        self.stage_workers = stage_workers


class _RequestState:
    __slots__ = ("connection", "object_id", "size")

    def __init__(self, connection: Connection, object_id: Optional[int] = None, size: int = 0):
        self.connection = connection
        self.object_id = object_id
        self.size = size


class HaboobServer:
    """SEDA web server serving a static corpus from a trace."""

    def __init__(
        self,
        kernel: Kernel,
        trace: WebTrace,
        mode: ProfilerMode = ProfilerMode.WHODUNIT,
        config: Optional[HaboobConfig] = None,
        overhead: Optional[OverheadModel] = None,
        name: str = "haboob",
    ):
        self.kernel = kernel
        self.trace = trace
        self.config = config or HaboobConfig()
        self.stage_runtime = StageRuntime(name, mode=mode, overhead=overhead)
        self.cpu = CPU(kernel, name=f"{name}-cpu")
        self.disk = Disk(
            kernel,
            positioning_time=self.config.disk_latency,
            name=f"{name}-disk",
        )
        self.listener = Listener(
            kernel, latency=self.config.client_latency, name=f"{name}-listen"
        )
        self.page_cache = LruCache(self.config.cache_bytes)
        self.bytes_sent = 0
        self.responses_sent = 0

        cfg = self.config
        mk = lambda stage_name, handler, workers: SedaStage(
            kernel, stage_name, handler, workers=workers,
            stage_runtime=self.stage_runtime,
        )
        self.listen_stage = mk("ListenStage", self._listen_handler, 1)
        self.http_server = mk("HttpServer", self._http_server_handler, cfg.stage_workers)
        self.read_stage = mk("ReadStage", self._read_handler, cfg.read_workers)
        self.http_recv = mk("HttpRecv", self._http_recv_handler, cfg.stage_workers)
        self.cache_stage = mk("CacheStage", self._cache_handler, cfg.stage_workers)
        self.miss_stage = mk("MissStage", self._miss_handler, cfg.stage_workers)
        self.file_io = mk("FileIOStage", self._file_io_handler, cfg.stage_workers)
        self.write_stage = mk("WriteStage", self._write_handler, cfg.stage_workers)
        self.stages = [
            self.listen_stage,
            self.http_server,
            self.read_stage,
            self.http_recv,
            self.cache_stage,
            self.miss_stage,
            self.file_io,
            self.write_stage,
        ]

    # ------------------------------------------------------------------
    @property
    def stages_by_name(self):
        """Profile runtimes keyed by stage name (scale-out spooling).

        Haboob is one process — one :class:`StageRuntime` shared by all
        SEDA stages — so the dump set has a single entry.
        """
        return {self.stage_runtime.name: self.stage_runtime}

    def save_profiles(self, directory: str, profile_format: str = "v1"):
        """Dump the server's profile into ``directory`` (see harness)."""
        import os

        from repro.core.persist import save_stage

        suffix = ".profile.wdp" if profile_format == "v2" else ".profile.json"
        os.makedirs(directory, exist_ok=True)
        paths = {}
        for name, stage in self.stages_by_name.items():
            path = os.path.join(directory, f"{name}{suffix}")
            save_stage(stage, path, profile_format=profile_format)
            paths[name] = path
        return paths

    def start(self) -> None:
        for stage in self.stages:
            stage.start()
        acceptor = self.kernel.spawn(
            self._acceptor(), name="haboob-acceptor", stage=self.stage_runtime
        )
        acceptor.daemon = True

    def _acceptor(self) -> Iterator:
        """Socket-level accept loop feeding the ListenStage queue."""
        thread = yield CurrentThread()
        with frame(thread, "accept_loop"):
            while True:
                connection = yield Accept(self.listener)
                telemetry.admit(self.stage_runtime.name, self.kernel)
                self.listen_stage.inject(connection)

    # ------------------------------------------------------------------
    # Stage handlers (Fig 10's graph)
    # ------------------------------------------------------------------
    def _listen_handler(self, stage: SedaStage, thread, connection) -> Iterator:
        yield from work(thread, self.cpu, self.config.accept_cost)
        stage.enqueue(thread, self.http_server.input_queue, connection)

    def _http_server_handler(self, stage: SedaStage, thread, connection) -> Iterator:
        yield from work(thread, self.cpu, self.config.http_server_cost)
        stage.enqueue(
            thread, self.read_stage.input_queue, _RequestState(connection)
        )

    def _read_handler(self, stage: SedaStage, thread, state: _RequestState) -> Iterator:
        message = yield Recv(state.connection.to_server)
        yield from work(thread, self.cpu, self.config.read_cost)
        verb, object_id = message.payload
        if verb == CLOSE:
            return
        state.object_id = object_id
        stage.enqueue(thread, self.http_recv.input_queue, state)

    def _http_recv_handler(self, stage: SedaStage, thread, state: _RequestState) -> Iterator:
        yield from work(thread, self.cpu, self.config.parse_cost)
        stage.enqueue(thread, self.cache_stage.input_queue, state)

    def _cache_handler(self, stage: SedaStage, thread, state: _RequestState) -> Iterator:
        yield from work(thread, self.cpu, self.config.cache_lookup_cost)
        entry = self.page_cache.lookup(state.object_id)
        if entry is not None:
            _, state.size = entry
            stage.enqueue(thread, self.write_stage.input_queue, state)
        else:
            stage.enqueue(thread, self.miss_stage.input_queue, state)

    def _miss_handler(self, stage: SedaStage, thread, state: _RequestState) -> Iterator:
        yield from work(thread, self.cpu, self.config.miss_cost)
        stage.enqueue(thread, self.file_io.input_queue, state)

    def _file_io_handler(self, stage: SedaStage, thread, state: _RequestState) -> Iterator:
        size = self.trace.size_of(state.object_id)
        yield ReadDisk(self.disk, size)
        yield from work(thread, self.cpu, size * self.config.disk_per_byte_cost)
        state.size = size
        self.page_cache.insert(state.object_id, state.object_id, size)
        stage.enqueue(thread, self.write_stage.input_queue, state)

    def _write_handler(self, stage: SedaStage, thread, state: _RequestState) -> Iterator:
        yield from work(
            thread,
            self.cpu,
            self.config.write_base_cost
            + state.size * self.config.write_per_byte_cost,
        )
        yield Send(
            state.connection.to_client, Message(state.object_id, state.size)
        )
        self.bytes_sent += state.size
        self.responses_sent += 1
        # Persistent connection: wait for the next request.
        fresh = _RequestState(state.connection)
        stage.enqueue(thread, self.read_stage.input_queue, fresh)

    # ------------------------------------------------------------------
    def throughput_mbps(self, since: float = 0.0) -> float:
        elapsed = self.kernel.now - since
        if elapsed <= 0:
            return 0.0
        return self.bytes_sent * 8 / elapsed / 1e6
