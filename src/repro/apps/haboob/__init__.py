"""Haboob-like SEDA web server."""

from repro.apps.haboob.server import HaboobConfig, HaboobServer

__all__ = ["HaboobServer", "HaboobConfig"]
