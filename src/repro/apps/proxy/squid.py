"""The Squid analog: an event-driven caching proxy (§8.2).

One event-loop thread drives the same five handlers the paper names:

- ``httpAccept`` — accept an incoming client connection;
- ``clientReadRequest`` — read one request off the connection;
- ``commConnectHandle`` — open a connection to the origin server
  (cache miss);
- ``httpReadReply`` — receive reply chunks from the origin (repeats for
  large bodies — the consecutive occurrences §4.1 collapses);
- ``commHandleWrite`` — write the response back to the client.

The transactional profile therefore shows ``commHandleWrite`` under two
distinct contexts — ``[httpAccept, clientReadRequest]`` for cache hits
and ``[httpAccept, clientReadRequest, httpReadReply]`` for misses —
which is precisely Fig 9's headline distinction.  Persistent
connections re-register ``clientReadRequest`` after a write; loop
pruning keeps the contexts finite.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro import telemetry
from repro.apps.proxy.cache import LruCache
from repro.channels.message import Message
from repro.channels.rpc import send_request
from repro.channels.socket import Connection, Listener, Send
from repro.core.profiler import OverheadModel, ProfilerMode, StageRuntime, work
from repro.events import Event, EventLoop
from repro.sim import CPU, Kernel
from repro.workloads.clients import CLOSE

FORWARD_REQUEST_BYTES = 350


class SquidConfig:
    """Cost model of the simulated Squid (seconds of CPU)."""

    def __init__(
        self,
        accept_cost: float = 12e-6,
        read_request_cost: float = 25e-6,
        cache_lookup_cost: float = 8e-6,
        connect_cost: float = 30e-6,
        reply_base_cost: float = 15e-6,
        reply_per_byte_cost: float = 1.2e-9,
        write_base_cost: float = 20e-6,
        write_per_byte_cost: float = 1.8e-9,
        cache_bytes: int = 32 * 1024 * 1024,
        client_latency: float = 100e-6,
    ):
        self.accept_cost = accept_cost
        self.read_request_cost = read_request_cost
        self.cache_lookup_cost = cache_lookup_cost
        self.connect_cost = connect_cost
        self.reply_base_cost = reply_base_cost
        self.reply_per_byte_cost = reply_per_byte_cost
        self.write_base_cost = write_base_cost
        self.write_per_byte_cost = write_per_byte_cost
        self.cache_bytes = cache_bytes
        self.client_latency = client_latency


class _ClientState:
    """Per-client-connection bookkeeping carried on event payloads."""

    __slots__ = (
        "connection",
        "key",
        "origin_connection",
        "received",
        "size",
        "body",
    )

    def __init__(self, connection: Connection):
        self.connection = connection
        self.key: Any = None
        self.origin_connection: Optional[Connection] = None
        self.received = 0
        self.size = 0
        self.body: Any = None


class SquidProxy:
    """Event-driven caching proxy in front of an origin listener."""

    def __init__(
        self,
        kernel: Kernel,
        origin_listener: Listener,
        mode: ProfilerMode = ProfilerMode.WHODUNIT,
        config: Optional[SquidConfig] = None,
        overhead: Optional[OverheadModel] = None,
        cacheable: Callable[[Any], bool] = lambda key: True,
        name: str = "squid",
    ):
        self.kernel = kernel
        self.origin_listener = origin_listener
        self.config = config or SquidConfig()
        self.cacheable = cacheable
        self.stage = StageRuntime(name, mode=mode, overhead=overhead)
        self.cpu = CPU(kernel, name=f"{name}-cpu")
        self.listener = Listener(
            kernel, latency=self.config.client_latency, name=f"{name}-listen"
        )
        self.loop = EventLoop(kernel, name=name, loop_frame="comm_poll")
        self.cache = LruCache(self.config.cache_bytes)
        # Idle persistent connections to the origin; reusing them means
        # commConnectHandle only runs for the first miss on each, which
        # is why Fig 9 shows it with a tiny share (1.1%) and most
        # httpReadReply executions directly under clientReadRequest.
        self._origin_pool: list = []
        self.bytes_to_clients = 0
        self.responses_sent = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.kernel.spawn(self.loop.run(), name="squid-loop", stage=self.stage)
        self.loop.event_add(
            Event("httpAccept", self._http_accept, waitable=self.listener)
        )

    @property
    def thread(self):
        return self.loop.thread

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _http_accept(self, loop: EventLoop, event: Event) -> Iterator:
        connection = self.listener.try_accept()
        yield from work(self.thread, self.cpu, self.config.accept_cost)
        if connection is not None:
            telemetry.admit(self.stage.name, self.kernel)
            state = _ClientState(connection)
            loop.event_add(
                Event(
                    "clientReadRequest",
                    self._client_read_request,
                    payload=state,
                    waitable=connection.to_server,
                )
            )
        # Keep listening: re-registered from the accept context, but the
        # accept handler's own context is the initial one each time.
        loop.event_add(
            Event("httpAccept", self._http_accept, waitable=self.listener)
        )

    def _client_read_request(self, loop: EventLoop, event: Event) -> Iterator:
        state: _ClientState = event.payload
        message = state.connection.to_server.try_recv()
        yield from work(self.thread, self.cpu, self.config.read_request_cost)
        if message is None:
            return
        verb = message.payload[0] if isinstance(message.payload, tuple) else None
        if verb == CLOSE:
            return
        state.key = message.payload
        yield from work(self.thread, self.cpu, self.config.cache_lookup_cost)
        entry = (
            self.cache.lookup(state.key) if self.cacheable(state.key) else None
        )
        if entry is not None:
            body, size = entry
            state.size = size
            state.body = body
            loop.event_add(
                Event("commHandleWrite", self._comm_handle_write, payload=state)
            )
        elif self._origin_pool:
            # Reuse a persistent origin connection: forward right away.
            state.origin_connection = self._origin_pool.pop()
            yield from self._forward_to_origin(loop, state)
        else:
            loop.event_add(
                Event("commConnectHandle", self._comm_connect_handle, payload=state)
            )

    def _comm_connect_handle(self, loop: EventLoop, event: Event) -> Iterator:
        state: _ClientState = event.payload
        yield from work(self.thread, self.cpu, self.config.connect_cost)
        state.origin_connection = self.origin_listener.connect()
        yield from self._forward_to_origin(loop, state)

    def _forward_to_origin(self, loop: EventLoop, state: "_ClientState") -> Iterator:
        state.received = 0
        yield from send_request(
            self.thread,
            state.origin_connection.to_server,
            state.key,
            FORWARD_REQUEST_BYTES,
        )
        loop.event_add(
            Event(
                "httpReadReply",
                self._http_read_reply,
                payload=state,
                waitable=state.origin_connection.to_client,
            )
        )

    def _http_read_reply(self, loop: EventLoop, event: Event) -> Iterator:
        state: _ClientState = event.payload
        chunk = state.origin_connection.to_client.try_recv()
        if chunk is None:
            # Spurious wakeup; wait for the next chunk.
            loop.event_add(
                Event(
                    "httpReadReply",
                    self._http_read_reply,
                    payload=state,
                    waitable=state.origin_connection.to_client,
                )
            )
            return
        yield from work(
            self.thread,
            self.cpu,
            self.config.reply_base_cost
            + chunk.size * self.config.reply_per_byte_cost,
        )
        state.received += chunk.size
        state.body = chunk.payload
        if not chunk.last:
            loop.event_add(
                Event(
                    "httpReadReply",
                    self._http_read_reply,
                    payload=state,
                    waitable=state.origin_connection.to_client,
                )
            )
            return
        state.size = state.received
        self._origin_pool.append(state.origin_connection)
        state.origin_connection = None
        if self.cacheable(state.key):
            self.cache.insert(state.key, state.body, state.size)
        loop.event_add(
            Event("commHandleWrite", self._comm_handle_write, payload=state)
        )

    def _comm_handle_write(self, loop: EventLoop, event: Event) -> Iterator:
        state: _ClientState = event.payload
        yield from work(
            self.thread,
            self.cpu,
            self.config.write_base_cost
            + state.size * self.config.write_per_byte_cost,
        )
        yield Send(state.connection.to_client, Message(state.body, state.size))
        self.bytes_to_clients += state.size
        self.responses_sent += 1
        # Persistent connection: wait for the next request.
        loop.event_add(
            Event(
                "clientReadRequest",
                self._client_read_request,
                payload=state,
                waitable=state.connection.to_server,
            )
        )

    # ------------------------------------------------------------------
    def throughput_mbps(self, since: float = 0.0) -> float:
        elapsed = self.kernel.now - since
        if elapsed <= 0:
            return 0.0
        return self.bytes_to_clients * 8 / elapsed / 1e6
