"""Squid-like event-driven web proxy cache."""

from repro.apps.proxy.cache import LruCache
from repro.apps.proxy.origin import OriginServer
from repro.apps.proxy.squid import SquidConfig, SquidProxy

__all__ = ["LruCache", "OriginServer", "SquidProxy", "SquidConfig"]
