"""A byte-capacity LRU object cache (Squid's in-memory store analog)."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple


class LruCache:
    """LRU cache of objects keyed by request key, bounded in bytes."""

    def __init__(self, capacity_bytes: int = 64 * 1024 * 1024):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[Tuple[Any, int]]:
        """Return ``(value, size)`` and refresh recency, or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def insert(self, key: Hashable, value: Any, size: int) -> None:
        """Insert or refresh an object, evicting LRU entries as needed."""
        if size < 0:
            raise ValueError("negative object size")
        if size > self.capacity_bytes:
            return  # uncacheably large
        old = self._entries.pop(key, None)
        if old is not None:
            self.used_bytes -= old[1]
        while self.used_bytes + size > self.capacity_bytes and self._entries:
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self.used_bytes -= evicted_size
            self.evictions += 1
        self._entries[key] = (value, size)
        self.used_bytes += size

    def invalidate(self, key: Hashable) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.used_bytes -= entry[1]
        return True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
