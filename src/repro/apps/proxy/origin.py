"""A simple threaded origin server behind the proxy.

Serves any request forwarded by the proxy: the response size comes from
a ``size_of`` callable (backed by the web trace, or by a servlet tier in
the TPC-W setup).  Large bodies are streamed in chunks so the proxy's
``httpReadReply`` handler runs repeatedly for one reply — the repeated
consecutive handler executions that §4.1 collapses.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator

from repro.channels.message import Message
from repro.channels.socket import Accept, Listener, Recv, Send
from repro.core.profiler import ProfilerMode, StageRuntime, work
from repro.sim import CPU, Kernel
from repro.sim.process import CurrentThread, frame

CHUNK_BYTES = 64 * 1024


class OriginServer:
    """Thread-per-connection static-content origin."""

    def __init__(
        self,
        kernel: Kernel,
        size_of: Callable[[object], int],
        mode: ProfilerMode = ProfilerMode.OFF,
        per_byte_cost: float = 1.5e-9,
        base_cost: float = 30e-6,
        latency: float = 150e-6,
        name: str = "origin",
    ):
        self.kernel = kernel
        self.size_of = size_of
        self.per_byte_cost = per_byte_cost
        self.base_cost = base_cost
        self.stage = StageRuntime(name, mode=mode)
        self.cpu = CPU(kernel, name=f"{name}-cpu")
        self.listener = Listener(kernel, latency=latency, name=f"{name}-listen")
        self.requests_served = 0

    def start(self) -> None:
        acceptor = self.kernel.spawn(
            self._accept_loop(), name="origin-acceptor", stage=self.stage
        )
        acceptor.daemon = True

    def _accept_loop(self) -> Iterator:
        yield CurrentThread()
        while True:
            connection = yield Accept(self.listener)
            handler = self.kernel.spawn(
                self._serve(connection), name="origin-conn", stage=self.stage
            )
            handler.daemon = True

    def _serve(self, connection) -> Iterator:
        thread = yield CurrentThread()
        with frame(thread, "origin_serve"):
            while True:
                request = yield Recv(connection.to_server)
                key = request.payload
                size = self.size_of(key)
                yield from work(
                    thread, self.cpu, self.base_cost + size * self.per_byte_cost
                )
                chunks = max(1, math.ceil(size / CHUNK_BYTES))
                remaining = size
                for index in range(chunks):
                    chunk_size = min(CHUNK_BYTES, remaining)
                    remaining -= chunk_size
                    yield Send(
                        connection.to_client,
                        Message(key, chunk_size, last=index == chunks - 1),
                    )
                self.requests_served += 1
