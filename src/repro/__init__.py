"""Whodunit: transactional profiling for multi-tier applications.

A Python reproduction of Chanda, Cox & Zwaenepoel (EuroSys 2007).

Layout:

- :mod:`repro.core` — the profiler: transaction contexts, CCTs,
  synopses, shared-memory flow detection, crosstalk, stitching;
- :mod:`repro.sim` — deterministic discrete-event substrate;
- :mod:`repro.vm` — the instruction-level emulator (QEMU substitute);
- :mod:`repro.channels`, :mod:`repro.events`, :mod:`repro.seda` —
  communication substrates with context tracking;
- :mod:`repro.apps` — the simulated Apache/MySQL/Squid/Haboob/TPC-W
  systems the paper evaluates on;
- :mod:`repro.workloads`, :mod:`repro.analysis` — workload generation
  and profile presentation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
