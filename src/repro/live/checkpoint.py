"""WDR2-framed checkpoints for the online streaming stitcher.

A live collector (:mod:`repro.live.collector`) periodically persists
its shadow profiling state so that a crash — or a memory-pressure
eviction — never loses more than one checkpoint interval.  Checkpoints
reuse the framing primitives from :mod:`repro.core.persist`
(``write_frame``/``read_frame``: magic + version + length over a
``mtime=0`` gzip JSON document, byte-deterministic for identical
documents) under the reduce-artifact magic ``WDR2`` with its own
version number, so the three on-disk artifact families (profile dumps,
reduce-tree groups, live checkpoints) stay mutually unmistakable.

Checkpoint semantics
--------------------

Every document is *superseding per key*, never additive:

* CCT snapshots are **cumulative** — the latest copy of a label's tree
  replaces any earlier copy outright.  Re-summing per-interval deltas
  would re-associate float additions and break the collector's
  byte-identical-to-post-mortem guarantee; copying the latest exact
  tree cannot.
* Synopsis tables are persisted as an **op log** (mints and crash
  clears, in order) because a mint → crash → mint sequence within one
  interval is not expressible as a set snapshot.
* Crosstalk aggregates and counters are cumulative snapshots.

Replaying all files of a directory in sequence order therefore
reconstructs the collector's state as of the last completed interval.
A ``kind="full"`` document (written by compaction) resets all state
before applying itself, so a compacted directory replays from that
single file.

Writes go through a temp file + ``os.replace`` so a torn write can
never corrupt the replay chain — a partially written checkpoint simply
does not exist.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.cct import CCTNode, CallingContextTree
from repro.core.persist import (
    decode_context,
    decode_crosstalk_type,
    encode_context,
    encode_crosstalk_type,
    read_frame,
    write_frame,
)

#: Same magic as the reduce-tree artifacts (both are WDR2-framed
#: presentation-phase state); the version field tells them apart.
CHECKPOINT_MAGIC = b"WDR2"
CHECKPOINT_VERSION = 2

CHECKPOINT_PREFIX = "ckpt-"
CHECKPOINT_SUFFIX = ".wdr2"


def checkpoint_path(directory: str, seq: int) -> str:
    return os.path.join(directory, f"{CHECKPOINT_PREFIX}{seq:08d}{CHECKPOINT_SUFFIX}")


def list_checkpoints(directory: str) -> List[str]:
    """Checkpoint files of ``directory`` in sequence (replay) order."""
    if not os.path.isdir(directory):
        return []
    names = [
        name
        for name in os.listdir(directory)
        if name.startswith(CHECKPOINT_PREFIX) and name.endswith(CHECKPOINT_SUFFIX)
    ]
    names.sort()
    return [os.path.join(directory, name) for name in names]


def write_checkpoint(directory: str, seq: int, document: Dict[str, Any]) -> str:
    """Atomically persist one checkpoint document; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = checkpoint_path(directory, seq)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        write_frame(
            handle, document, magic=CHECKPOINT_MAGIC, version=CHECKPOINT_VERSION
        )
    os.replace(tmp, path)
    return path


def read_checkpoint(path: str) -> Dict[str, Any]:
    with open(path, "rb") as handle:
        document = read_frame(
            handle, magic=CHECKPOINT_MAGIC, version=CHECKPOINT_VERSION
        )
    if document is None:
        raise ValueError(f"empty checkpoint file {path!r}")
    return document


def remove_checkpoints(paths: List[str]) -> None:
    """Delete superseded checkpoint files (compaction)."""
    for path in paths:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Document cells
# ----------------------------------------------------------------------
def encode_cct(label: Any, cct: CallingContextTree) -> List[Any]:
    """One cumulative CCT snapshot cell: ``[label, parents, names,
    weights, counts]`` (columnar pre-order rows; floats round-trip
    exactly through JSON's shortest-repr encoding)."""
    rows = cct.root.to_rows()
    return [
        encode_context(label),
        [row[0] for row in rows],
        [row[1] for row in rows],
        [row[2] for row in rows],
        [row[3] for row in rows],
    ]


def decode_cct(cell: List[Any]) -> CallingContextTree:
    label = decode_context(cell[0])
    cct = CallingContextTree(label)
    CCTNode.attach_rows(cct.root, list(zip(cell[1], cell[2], cell[3], cell[4])))
    return cct


def cct_cell_label(cell: List[Any]):
    return decode_context(cell[0])


def cct_cell_weights(cell: List[Any]) -> List[float]:
    """The raw per-node weight column of a snapshot cell (for scalar
    accounting without materialising the tree)."""
    return cell[3]


def encode_syn_op(op: Any) -> List[Any]:
    """Synopsis op-log entries: ``["s", value, context]`` for a mint,
    ``["c", lost]`` for a crash clear."""
    if op[0] == "s":
        return ["s", op[1], encode_context(op[2])]
    return ["c", op[1]]


def decode_syn_op(cell: List[Any]) -> Any:
    if cell[0] == "s":
        return ("s", cell[1], decode_context(cell[2]))
    return ("c", cell[1])


def encode_crosstalk(pairs: Dict[Any, Any]) -> List[List[Any]]:
    """Cumulative crosstalk aggregate: rows ``[waiter, holder, count,
    total, max]`` keyed by ordered type pair."""
    return [
        [
            encode_crosstalk_type(waiter),
            encode_crosstalk_type(holder),
            stats[0],
            stats[1],
            stats[2],
        ]
        for (waiter, holder), stats in pairs.items()
    ]


def decode_crosstalk(rows: List[List[Any]]) -> Dict[Any, List[Any]]:
    return {
        (decode_crosstalk_type(row[0]), decode_crosstalk_type(row[1])): [
            row[2], row[3], row[4]
        ]
        for row in rows
    }
