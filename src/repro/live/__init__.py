"""repro.live — the online streaming stitcher.

Turns the batch presentation phase into a continuous-profiling
service: a :class:`LiveCollector` consumes the telemetry layer's raw
profile-event stream during the run, keeps incrementally-stitched
state under bounded memory (LRU of resident CCTs spilling to WDR2
checkpoints), answers live queries (``top_contexts``,
``stage_weights``, ``completeness``, crosstalk pairs) at any virtual
time, and — after final compaction — produces a profile byte-identical
to the post-mortem stitch of the same run.

See ``docs/observability.md`` for the architecture walkthrough.
"""

from repro.live.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.live.collector import LiveCollector, attach_collector

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "LiveCollector",
    "attach_collector",
    "list_checkpoints",
    "read_checkpoint",
    "write_checkpoint",
]
