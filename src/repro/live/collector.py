"""The online streaming stitcher: live profiles without post-mortem dumps.

Whodunit's presentation phase is batch: run, dump per-stage profiles,
stitch.  :class:`LiveCollector` is the continuous-profiling version —
a long-lived consumer of the telemetry layer's raw profile-event
stream (CPU samples, synopsis mints, crash amnesia, crosstalk waits)
that maintains *shadow* per-stage profiling state incrementally and
can answer "top contexts right now" at any virtual time, while the
simulation keeps running.

Equivalence guarantee
---------------------

The collector does not approximate: it replays the exact per-stage
operations the real :class:`~repro.core.profiler.StageRuntime` applied,
in the same order, with the same floats — shadow CCTs receive the same
``record_sample`` calls, shadow synopsis tables the same mints and the
same crash clears.  Final compaction therefore feeds
:func:`repro.core.stitch.stitch_profiles` bit-identical inputs, and
the compacted profile serialises to the *same bytes*
(:func:`repro.parallel.stitching.canonical_profile_bytes`) as the
post-mortem stitch of the same seeded run.  Eviction round-trips
(``to_rows``/``attach_rows`` through JSON) are float-exact, so bounded
memory does not weaken the guarantee.

Bounded memory
--------------

Resident CCTs live in an LRU; when the resident count exceeds
``max_resident`` the coldest trees are spilled to the checkpoint
directory (cumulative snapshots, superseding — see
:mod:`repro.live.checkpoint`) and dropped, then faulted back in on
their next sample.  Scalar per-context weight aggregates stay resident
regardless, so live queries never touch evicted trees.  Periodic
interval checkpoints persist everything dirty, so a collector crash
loses at most one interval; :meth:`LiveCollector.recover` rebuilds the
shadow state (cold — trees stay on disk) by replaying the directory.

Backpressure
------------

``on_profile_event`` is O(1): append + a counter check.  Absorption
runs in batches, *inline in the producer's call* once the pending
buffer reaches ``batch`` events — the producer pays for absorption
instead of growing an unbounded queue.  ``pending_events`` is the
pressure signal the :class:`~repro.telemetry.sinks.StitchingSink`
exposes to the recorder.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.cct import CallingContextTree
from repro.core.context import TransactionContext, UnresolvedRef
from repro.core.stitch import StitchStats, resolve_context, stitch_profiles
from repro.live import checkpoint as _ckpt

__all__ = ["LiveCollector", "attach_collector"]


class _ShadowSynopses:
    """Mirror of a stage's synopsis table, fed by mint/crash events.

    Duck-types the slice of :class:`~repro.core.synopsis.SynopsisTable`
    the resolver uses (``resolve``), so shadow stages drop straight
    into :func:`resolve_context` / :func:`stitch_profiles`.
    """

    __slots__ = ("stage_name", "by_value")

    def __init__(self, stage_name: str):
        self.stage_name = stage_name
        self.by_value: Dict[int, TransactionContext] = {}

    def resolve(self, value: int) -> TransactionContext:
        try:
            return self.by_value[value]
        except KeyError:
            raise KeyError(
                f"stage {self.stage_name!r} has no synopsis {value:#010x}"
            ) from None


class _Entry:
    """Per-(stage, label) shadow state: the CCT (or None when spilled)
    plus the scalar aggregates that never leave memory."""

    __slots__ = ("cct", "weight", "dirty", "resolved")

    def __init__(self):
        self.cct: Optional[CallingContextTree] = None
        self.weight = 0.0
        self.dirty = False
        self.resolved: Optional[TransactionContext] = None


class _ShadowStage:
    """Shadow of one StageRuntime's profile state."""

    __slots__ = (
        "name", "synopses", "labels", "order", "new_labels",
        "pending_ops", "crosstalk", "crashes",
    )

    def __init__(self, name: str):
        self.name = name
        self.synopses = _ShadowSynopses(name)
        self.labels: Dict[TransactionContext, _Entry] = {}
        # First-seen label order — replayed at compaction so the shadow
        # ccts dict iterates exactly like the real stage's.
        self.order: List[TransactionContext] = []
        # Order of labels first seen since the last checkpoint write.
        self.new_labels: List[TransactionContext] = []
        # Synopsis op log since the last checkpoint write.
        self.pending_ops: List[Any] = []
        # Cumulative (count, total, max) per ordered type pair.
        self.crosstalk: Dict[Tuple[Any, Any], List[Any]] = {}
        self.crashes = 0


class LiveCollector:
    """Consumes the raw profile-event stream; answers live queries.

    Attach via :func:`attach_collector` (or wrap in a
    :class:`~repro.telemetry.sinks.StitchingSink` manually) *before*
    constructing the simulated system — instrumentation sites capture
    the emitter at construction, like every other telemetry hook.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        interval: float = 5.0,
        max_resident: Optional[int] = 512,
        batch: int = 512,
    ):
        if directory is None and max_resident is not None:
            # Nowhere to spill: eviction would lose samples.
            max_resident = None
        self.directory = directory
        self.interval = interval
        self.max_resident = max_resident
        self.batch = max(1, batch)
        self._pending: List[Tuple[Any, ...]] = []
        self._stages: Dict[str, _ShadowStage] = {}
        # LRU over resident (stage, label) entries, coldest first.
        self._lru: "OrderedDict[Tuple[str, TransactionContext], _Entry]" = (
            OrderedDict()
        )
        # Latest checkpoint file holding each label's cumulative tree.
        self._spill_index: Dict[Tuple[str, TransactionContext], str] = {}
        self._doc_cache: Tuple[Optional[str], Any] = (None, None)
        # Incremental resolution state for the live query index.
        self._cache: Dict[TransactionContext, TransactionContext] = {}
        self._missing: set = set()
        self._resolved_weights: Dict[Tuple[str, TransactionContext], float] = {}
        self._index_dirty = False
        # Virtual time of the newest absorbed event.
        self.now = 0.0
        self._seq = 0
        self._next_ckpt = interval
        # Cumulative counters (checkpointed, restored on recovery).
        self.samples = 0
        self.sample_weight = 0.0
        self.synopses_minted = 0
        self.synopses_lost = 0
        self.crashes = 0
        self.crosstalk_events = 0
        self.spans_seen = 0
        self.hops_seen = 0
        self.events_absorbed = 0
        self.evictions = 0
        self.revivals = 0
        self.checkpoints_written = 0
        self.peak_resident = 0
        self.recovered_from = 0
        # Absorption method table: one dict hit per event replaces the
        # string-compare chain drain() used to run per event kind.
        self._absorb = {
            "sample": self._on_sample,
            "synopsis": self._on_synopsis,
            "crash": self._on_crash,
            "crosstalk": self._on_crosstalk,
        }

    # ------------------------------------------------------------------
    # Sink-facing entry points (hot path)
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        return len(self._pending)

    def on_span(self, span: Any) -> None:
        self.spans_seen += 1
        if span.category == "transaction.hop":
            self.hops_seen += 1

    def on_profile_event(self, event: Tuple[Any, ...]) -> None:
        pending = self._pending
        pending.append(event)
        if len(pending) >= self.batch:
            self.drain()

    # ------------------------------------------------------------------
    # Absorption
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Absorb every pending event into the shadow state."""
        absorb = self._absorb
        while self._pending:
            batch, self._pending = self._pending, []
            for event in batch:
                handler = absorb.get(event[0])
                if handler is not None:
                    handler(event)
            self.events_absorbed += len(batch)
        if self.directory is not None and self.now >= self._next_ckpt:
            self.checkpoint()

    def _stage(self, name: str) -> _ShadowStage:
        shadow = self._stages.get(name)
        if shadow is None:
            shadow = self._stages[name] = _ShadowStage(name)
        return shadow

    def _on_sample(self, event) -> None:
        _, stage_name, label, path, weight, t = event
        self.now = t
        self.samples += 1
        self.sample_weight += weight
        shadow = self._stage(stage_name)
        entry = shadow.labels.get(label)
        key = (stage_name, label)
        if entry is None:
            entry = _Entry()
            shadow.labels[label] = entry
            shadow.order.append(label)
            shadow.new_labels.append(label)
            entry.cct = CallingContextTree(label)
            self._admit(key, entry)
            entry.resolved = self._resolve_label(label)
        elif entry.cct is None:
            self._revive(key, entry, shadow)
        else:
            self._lru.move_to_end(key)
        entry.cct.record_sample(path, weight)
        entry.dirty = True
        entry.weight += weight
        if not self._index_dirty and entry.resolved is not None:
            rkey = (stage_name, entry.resolved)
            self._resolved_weights[rkey] = (
                self._resolved_weights.get(rkey, 0.0) + weight
            )

    def _on_synopsis(self, event) -> None:
        _, stage_name, value, context, t = event
        self.now = t
        self.synopses_minted += 1
        shadow = self._stage(stage_name)
        shadow.synopses.by_value[value] = context
        shadow.pending_ops.append(("s", value, context))
        if (stage_name, value) in self._missing:
            # A reference that previously failed to resolve just became
            # resolvable; re-bucket the scalar index on next query.
            self._index_dirty = True

    def _on_crash(self, event) -> None:
        _, stage_name, lost = event
        self.crashes += 1
        self.synopses_lost += lost
        shadow = self._stage(stage_name)
        shadow.crashes += 1
        shadow.synopses.by_value.clear()
        shadow.pending_ops.append(("c", lost))
        # Earlier resolutions may have read mappings that no longer
        # exist; queries resolve against *current* tables, like the
        # post-mortem pass resolves against end-of-run tables.
        self._index_dirty = True

    def _on_crosstalk(self, event) -> None:
        _, stage_name, waiter, holder, wait = event
        self.crosstalk_events += 1
        shadow = self._stage(stage_name or "<anonymous>")
        stats = shadow.crosstalk.get((waiter, holder))
        if stats is None:
            shadow.crosstalk[(waiter, holder)] = [1, wait, wait]
        else:
            stats[0] += 1
            stats[1] += wait
            if wait > stats[2]:
                stats[2] = wait

    # ------------------------------------------------------------------
    # LRU + spill
    # ------------------------------------------------------------------
    @property
    def resident_contexts(self) -> int:
        return len(self._lru)

    def _admit(self, key, entry: _Entry) -> None:
        limit = self.max_resident
        if limit is not None and len(self._lru) >= limit:
            self._evict(max(1, limit // 4))
        self._lru[key] = entry
        if len(self._lru) > self.peak_resident:
            self.peak_resident = len(self._lru)

    def _evict(self, count: int) -> None:
        """Spill the coldest ``count`` resident trees to disk."""
        victims: List[Tuple[Tuple[str, TransactionContext], _Entry]] = []
        for key in list(self._lru):
            if len(victims) >= count:
                break
            victims.append((key, self._lru[key]))
        dirty = [(key, entry) for key, entry in victims if entry.dirty]
        if dirty:
            # One spill file for the whole batch; it is an ordinary
            # interval checkpoint that happens to snapshot only the
            # evicted trees, so replay semantics stay uniform.
            self._write_doc([key for key, _ in dirty])
        for key, entry in victims:
            entry.cct = None
            entry.dirty = False
            del self._lru[key]
            self.evictions += 1

    def _revive(self, key, entry: _Entry, shadow: _ShadowStage) -> None:
        """Fault a spilled tree back in from its latest snapshot."""
        entry.cct = self._load_tree(key)
        self._admit(key, entry)
        self.revivals += 1

    def _load_tree(self, key) -> CallingContextTree:
        stage_name, label = key
        path = self._spill_index.get(key)
        if path is None:
            # Never persisted (clean empty entry from recovery edge
            # cases): start a fresh tree.
            return CallingContextTree(label)
        cached_path, cached_doc = self._doc_cache
        if cached_path == path:
            doc = cached_doc
        else:
            doc = _ckpt.read_checkpoint(path)
            self._doc_cache = (path, doc)
        for cell in doc["stages"].get(stage_name, {}).get("ccts", []):
            if _ckpt.cct_cell_label(cell) == label:
                return _ckpt.decode_cct(cell)
        raise ValueError(
            f"checkpoint {path!r} lost the snapshot for {stage_name!r} "
            f"label {label!r}"
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _counters_doc(self) -> Dict[str, Any]:
        stats = self._fresh_stats()
        return {
            "samples": self.samples,
            "sample_weight": self.sample_weight,
            "synopses_minted": self.synopses_minted,
            "synopses_lost": self.synopses_lost,
            "crashes": self.crashes,
            "crosstalk_events": self.crosstalk_events,
            "spans_seen": self.spans_seen,
            "hops_seen": self.hops_seen,
            "events_absorbed": self.events_absorbed,
            "evictions": self.evictions,
            "revivals": self.revivals,
            "attempted": stats.attempted,
            "unresolved": stats.unresolved,
        }

    def _write_doc(
        self,
        snapshot_keys: Iterable[Tuple[str, TransactionContext]],
        kind: str = "interval",
    ) -> str:
        """Persist one superseding checkpoint document (see
        :mod:`repro.live.checkpoint` for the replay semantics)."""
        stages_doc: Dict[str, Any] = {}
        by_stage: Dict[str, List[TransactionContext]] = {}
        for stage_name, label in snapshot_keys:
            by_stage.setdefault(stage_name, []).append(label)
        for name, shadow in self._stages.items():
            cct_cells = []
            for label in by_stage.get(name, []):
                entry = shadow.labels[label]
                cct_cells.append(_ckpt.encode_cct(label, entry.cct))
            stages_doc[name] = {
                "new_labels": [
                    _ckpt.encode_context(label) for label in shadow.new_labels
                ],
                "syn_ops": [_ckpt.encode_syn_op(op) for op in shadow.pending_ops],
                "ccts": cct_cells,
                "crosstalk": _ckpt.encode_crosstalk(shadow.crosstalk),
            }
            shadow.new_labels = []
            shadow.pending_ops = []
        document = {
            "seq": self._seq,
            "t": self.now,
            "kind": kind,
            "counters": self._counters_doc(),
            "stages": stages_doc,
        }
        path = _ckpt.write_checkpoint(self.directory, self._seq, document)
        self._seq += 1
        self.checkpoints_written += 1
        self._doc_cache = (None, None)
        for key in snapshot_keys:
            self._spill_index[key] = path
            entry = self._stages[key[0]].labels[key[1]]
            entry.dirty = False
        return path

    def checkpoint(self) -> Optional[str]:
        """Write an interval checkpoint of everything dirty.

        After this returns, a collector crash loses only events newer
        than the write — at most one checkpoint interval.
        """
        if self.directory is None:
            return None
        dirty = [
            (name, label)
            for name, shadow in self._stages.items()
            for label, entry in shadow.labels.items()
            if entry.dirty and entry.cct is not None
        ]
        path = self._write_doc(dirty)
        self._next_ckpt = self.now + self.interval
        return path

    def finalize(self) -> Optional[str]:
        """Absorb everything pending and write a final interval
        checkpoint (the end-of-run flush path for shard runners)."""
        self.drain()
        if self.directory is None:
            return None
        return self.checkpoint()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: str,
        interval: float = 5.0,
        max_resident: Optional[int] = 512,
        batch: int = 512,
    ) -> "LiveCollector":
        """Rebuild a collector from a checkpoint directory.

        State is reconstructed *cold*: synopsis tables and scalar
        aggregates come back resident, CCTs stay on disk until touched.
        Everything newer than the last completed checkpoint is gone —
        the bounded-loss guarantee, not a bug.
        """
        collector = cls(
            directory=directory,
            interval=interval,
            max_resident=max_resident,
            batch=batch,
        )
        paths = _ckpt.list_checkpoints(directory)
        for path in paths:
            collector._replay(_ckpt.read_checkpoint(path), path)
        if paths:
            collector.recovered_from = len(paths)
            collector._next_ckpt = collector.now + interval
            collector._index_dirty = True
        return collector

    def _replay(self, doc: Dict[str, Any], path: str) -> None:
        if doc.get("kind") == "full":
            # A full snapshot is absolute: drop anything replayed from
            # older files (compaction normally deletes them anyway).
            self._stages.clear()
            self._lru.clear()
            self._spill_index.clear()
        self._seq = doc["seq"] + 1
        self.now = doc["t"]
        counters = doc["counters"]
        self.samples = counters["samples"]
        self.sample_weight = counters["sample_weight"]
        self.synopses_minted = counters["synopses_minted"]
        self.synopses_lost = counters["synopses_lost"]
        self.crashes = counters["crashes"]
        self.crosstalk_events = counters["crosstalk_events"]
        self.spans_seen = counters["spans_seen"]
        self.hops_seen = counters["hops_seen"]
        self.events_absorbed = counters["events_absorbed"]
        for name, stage_doc in doc["stages"].items():
            shadow = self._stage(name)
            for cells in stage_doc["new_labels"]:
                label = _ckpt.decode_context(cells)
                if label not in shadow.labels:
                    shadow.labels[label] = _Entry()
                    shadow.order.append(label)
            for cell in stage_doc["syn_ops"]:
                op = _ckpt.decode_syn_op(cell)
                if op[0] == "s":
                    shadow.synopses.by_value[op[1]] = op[2]
                else:
                    shadow.synopses.by_value.clear()
                    shadow.crashes += 1
            for cell in stage_doc["ccts"]:
                label = _ckpt.cct_cell_label(cell)
                entry = shadow.labels.get(label)
                if entry is None:
                    entry = shadow.labels[label] = _Entry()
                    shadow.order.append(label)
                entry.cct = None
                entry.dirty = False
                entry.weight = math.fsum(_ckpt.cct_cell_weights(cell))
                self._spill_index[(name, label)] = path
            if stage_doc["crosstalk"]:
                shadow.crosstalk = {
                    key: list(stats)
                    for key, stats in _ckpt.decode_crosstalk(
                        stage_doc["crosstalk"]
                    ).items()
                }

    # ------------------------------------------------------------------
    # Live queries
    # ------------------------------------------------------------------
    def _stage_map(self) -> Dict[str, _ShadowStage]:
        return self._stages

    def _resolve_label(self, label: TransactionContext) -> TransactionContext:
        resolved = resolve_context(
            label, self._stages, self._cache, strict=False
        )
        for element in resolved:
            if isinstance(element, UnresolvedRef):
                self._missing.add((element.origin, element.value))
        return resolved

    def _fresh_stats(self) -> StitchStats:
        """One non-strict resolve pass over every label against the
        *current* tables (exactly what the post-mortem pass would count
        on the same state)."""
        stats = StitchStats()
        cache: Dict[TransactionContext, TransactionContext] = {}
        for shadow in self._stages.values():
            for label in shadow.order:
                resolve_context(label, self._stages, cache, False, stats)
        return stats

    def _refresh_index(self) -> None:
        if not self._index_dirty:
            return
        self._cache = {}
        self._missing.clear()
        self._resolved_weights = {}
        for name, shadow in self._stages.items():
            for label in shadow.order:
                entry = shadow.labels[label]
                entry.resolved = self._resolve_label(label)
                if entry.weight:
                    rkey = (name, entry.resolved)
                    self._resolved_weights[rkey] = (
                        self._resolved_weights.get(rkey, 0.0) + entry.weight
                    )
        self._index_dirty = False

    def top_contexts(
        self, k: int = 10
    ) -> List[Tuple[str, TransactionContext, float, float]]:
        """The ``k`` heaviest (stage, resolved context) entries right
        now: rows ``(stage, context, weight, share-of-stage)``.

        Served from the scalar index — never touches spilled trees, so
        a query mid-run is cheap at any memory pressure.
        """
        self.drain()
        self._refresh_index()
        totals = self.stage_weights()
        rows = sorted(
            self._resolved_weights.items(),
            key=lambda item: (-item[1], item[0][0], repr(item[0][1])),
        )
        return [
            (stage, context, weight, weight / totals[stage] if totals[stage] else 0.0)
            for (stage, context), weight in rows[: max(0, k)]
        ]

    def stage_weights(self) -> Dict[str, float]:
        """Total sample weight per stage, at the current virtual time."""
        self.drain()
        return {
            name: math.fsum(entry.weight for entry in shadow.labels.values())
            for name, shadow in self._stages.items()
        }

    def completeness(self) -> float:
        """Fraction of synopsis references resolvable *right now*."""
        self.drain()
        return self._fresh_stats().completeness

    def stitch_stats(self) -> Tuple[int, int]:
        """Current ``(attempted, unresolved)`` resolution tallies."""
        self.drain()
        stats = self._fresh_stats()
        return stats.attempted, stats.unresolved

    def crosstalk_pairs(self) -> List[Tuple[Any, Any, int, float, float, float]]:
        """Crosstalk aggregated across stages: rows ``(waiter, holder,
        count, total, mean, max)``, heaviest total first."""
        self.drain()
        folded: Dict[Tuple[Any, Any], List[Any]] = {}
        for shadow in self._stages.values():
            for key, stats in shadow.crosstalk.items():
                acc = folded.get(key)
                if acc is None:
                    folded[key] = list(stats)
                else:
                    acc[0] += stats[0]
                    acc[1] += stats[1]
                    if stats[2] > acc[2]:
                        acc[2] = stats[2]
        rows = [
            (waiter, holder, count, total, total / count if count else 0.0, peak)
            for (waiter, holder), (count, total, peak) in folded.items()
        ]
        rows.sort(key=lambda row: -row[3])
        return rows

    # ------------------------------------------------------------------
    # Compaction: the live profile, byte-identical to post-mortem
    # ------------------------------------------------------------------
    class _StitchView:
        """Duck-typed StageRuntime slice for :func:`stitch_profiles`."""

        __slots__ = ("name", "ccts", "synopses")

        def __init__(self, name, ccts, synopses):
            self.name = name
            self.ccts = ccts
            self.synopses = synopses

    def _views(self) -> List["LiveCollector._StitchView"]:
        views = []
        for name, shadow in self._stages.items():
            ccts: Dict[TransactionContext, CallingContextTree] = {}
            for label in shadow.order:
                entry = shadow.labels[label]
                if entry.cct is not None:
                    ccts[label] = entry.cct
                else:
                    ccts[label] = self._load_tree((name, label))
            views.append(self._StitchView(name, ccts, shadow.synopses))
        return views

    def stitched_profile(self, strict: bool = False):
        """The full end-to-end profile of everything absorbed so far.

        Materialises every spilled tree (this is the end-of-run path —
        bounded-memory queries should use :meth:`top_contexts` /
        :meth:`stage_weights` instead) and runs the very same
        :func:`stitch_profiles` the post-mortem presentation phase
        runs, on bit-identical inputs.
        """
        self.drain()
        return stitch_profiles(self._views(), strict=strict)

    def compact(self, strict: bool = False):
        """Finalize: stitch, then collapse the checkpoint directory to
        a single ``kind="full"`` snapshot superseding all others.

        Returns the stitched profile.  After compaction the directory
        replays from one file; :func:`repro.cli` exposes this as
        ``repro live-report``.
        """
        self.drain()
        profile = self.stitched_profile(strict=strict)
        if self.directory is not None:
            older = _ckpt.list_checkpoints(self.directory)
            keys = [
                (name, label)
                for name, shadow in self._stages.items()
                for label in shadow.order
            ]
            for name, shadow in self._stages.items():
                # Full documents carry absolute state: every label in
                # first-seen order, the whole current synopsis table.
                shadow.new_labels = list(shadow.order)
                shadow.pending_ops = [
                    ("s", value, context)
                    for value, context in shadow.synopses.by_value.items()
                ]
                for label in shadow.order:
                    entry = shadow.labels[label]
                    if entry.cct is None:
                        entry.cct = self._load_tree((name, label))
                        self._lru[(name, label)] = entry
            final = self._write_doc(keys, kind="full")
            _ckpt.remove_checkpoints([p for p in older if p != final])
        return profile


def attach_collector(
    tele: Any,
    directory: Optional[str] = None,
    interval: float = 5.0,
    max_resident: Optional[int] = 512,
    batch: int = 512,
) -> LiveCollector:
    """Create a LiveCollector and attach it to ``tele`` via a
    :class:`~repro.telemetry.sinks.StitchingSink`.

    Must run before the simulated system is built (stage runtimes
    capture the profile-event emitter at construction).  Returns the
    collector; the sink is reachable as usual through the recorder.
    """
    from repro.telemetry.sinks import StitchingSink

    collector = LiveCollector(
        directory=directory,
        interval=interval,
        max_resident=max_resident,
        batch=batch,
    )
    tele.add_sink(StitchingSink(collector))
    return collector
