"""Discrete-event simulation substrate.

The paper runs Whodunit against real servers on real machines.  This
package provides the deterministic substitute: a virtual clock, threads
as coroutines, contended CPUs, mutexes/condition variables with
wait-time hooks, and seeded randomness.  Every multi-tier application in
:mod:`repro.apps` is built on these primitives, which gives the profiler
the same event orderings and cost attribution it would see on hardware,
but reproducibly.
"""

from repro.sim.kernel import Kernel
from repro.sim.process import (
    CurrentThread,
    Delay,
    Exit,
    Join,
    SimThread,
    Spawn,
    Syscall,
)
from repro.sim.cpu import CPU, UseCPU
from repro.sim.sync import (
    Acquire,
    Condition,
    Mutex,
    Notify,
    NotifyAll,
    Release,
    Wait,
)
from repro.sim.rng import Rng

__all__ = [
    "Kernel",
    "SimThread",
    "CurrentThread",
    "Syscall",
    "Delay",
    "Join",
    "Spawn",
    "Exit",
    "CPU",
    "UseCPU",
    "Mutex",
    "Condition",
    "Acquire",
    "Release",
    "Wait",
    "Notify",
    "NotifyAll",
    "Rng",
]
