"""A blocking pool of reusable resources (e.g. database connections).

The Tomcat-like container keeps a fixed set of connections to the
database server; servlet threads check one out per query and return it
afterwards.  Checkout blocks when the pool is empty, which models
connection-pool pressure under load.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterable, TYPE_CHECKING

from repro.sim.process import Syscall, SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class ResourcePool:
    """FIFO pool with blocking checkout."""

    def __init__(self, kernel: "Kernel", items: Iterable[Any] = (), name: str = "pool"):
        self.kernel = kernel
        self.name = name
        self._free: Deque[Any] = deque(items)
        self._waiters: Deque[SimThread] = deque()
        self.checkouts = 0
        self.total_wait_events = 0

    def put(self, item: Any) -> None:
        """Return an item; hands it straight to a blocked waiter if any."""
        if self._waiters:
            waiter = self._waiters.popleft()
            self.kernel.resume(waiter, item)
        else:
            self._free.append(item)

    @property
    def available(self) -> int:
        return len(self._free)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResourcePool {self.name} free={len(self._free)} waiting={len(self._waiters)}>"


class Get(Syscall):
    """Check an item out of the pool, blocking while it is empty."""

    __slots__ = ("pool",)

    def __init__(self, pool: ResourcePool):
        self.pool = pool

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        self.pool.checkouts += 1
        if self.pool._free:
            kernel.resume(thread, self.pool._free.popleft())
        else:
            self.pool.total_wait_events += 1
            thread.blocked_on = self
            self.pool._waiters.append(thread)

    def __repr__(self) -> str:
        return f"Get({self.pool.name})"
