"""Seeded random streams for workload generation.

A single :class:`Rng` wraps :class:`random.Random` and adds the
distributions the workloads need: Zipf object popularity (web traces),
bounded Pareto response sizes, and exponential think/interarrival
times.  Separate named streams derived from one master seed keep
different model components independent yet reproducible.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import List, Sequence, Tuple


class Rng:
    """Reproducible random stream with workload-oriented helpers."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._random = random.Random(seed)

    def stream(self, name: str) -> "Rng":
        """Derive an independent, deterministic sub-stream.

        Derivation uses CRC32, not ``hash()``: Python randomises string
        hashing per process, which would silently break cross-process
        reproducibility of every seeded experiment.
        """
        derived = zlib.crc32(f"{self.seed}:{name}".encode()) & 0x7FFFFFFF
        return Rng(derived)

    # ------------------------------------------------------------------
    # Pass-throughs
    # ------------------------------------------------------------------
    def random(self) -> float:
        return self._random.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._random.randint(lo, hi)

    def choice(self, seq: Sequence):
        return self._random.choice(seq)

    def shuffle(self, seq: List) -> None:
        self._random.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    # ------------------------------------------------------------------
    # Workload distributions
    # ------------------------------------------------------------------
    def zipf_table(self, n: int, alpha: float = 1.0) -> List[float]:
        """Cumulative probability table for a Zipf(alpha) law over n items."""
        weights = [1.0 / (i ** alpha) for i in range(1, n + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        return cumulative

    def zipf_pick(self, cumulative: List[float]) -> int:
        """Pick an index (0-based, 0 most popular) from a zipf table."""
        u = self._random.random()
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def bounded_pareto(self, alpha: float, lo: float, hi: float) -> float:
        """Bounded Pareto sample — heavy-tailed web object sizes."""
        u = self._random.random()
        ha = hi ** alpha
        la = lo ** alpha
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)
        return x

    def weighted_pick(self, items: Sequence[Tuple[object, float]]):
        """Pick an item from ``(value, weight)`` pairs."""
        total = sum(w for _, w in items)
        u = self._random.random() * total
        acc = 0.0
        for value, weight in items:
            acc += weight
            if u <= acc:
                return value
        return items[-1][0]

    def lognormal(self, mu: float, sigma: float) -> float:
        return math.exp(self._random.gauss(mu, sigma))
