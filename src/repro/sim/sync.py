"""Synchronization primitives with the hooks Whodunit needs.

:class:`Mutex` is a FIFO reader-writer lock.  Exclusive mode models
``pthread_mutex_lock`` and MyISAM table write locks; shared mode models
MyISAM table read locks.  Every acquisition that had to wait reports
``(waiter, holder_snapshot, wait_time)`` to the mutex's ``observers`` —
this is the measurement point for transaction crosstalk (§6 of the
paper).

:class:`Condition` is a condition variable bound to a mutex, used by the
Apache-like server's shared connection queue.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.sim.process import Syscall, SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

EXCLUSIVE = "exclusive"
SHARED = "shared"


class _Waiter:
    __slots__ = ("thread", "mode", "enqueued_at")

    def __init__(self, thread: SimThread, mode: str, enqueued_at: float):
        self.thread = thread
        self.mode = mode
        self.enqueued_at = enqueued_at


FIFO = "fifo"
READER_PRIORITY = "reader-priority"


class Mutex:
    """Reader-writer lock with wait-time observation.

    Two scheduling policies:

    - ``fifo`` (default): a queued writer blocks newly arriving readers,
      so writers cannot starve — pthread-style fairness;
    - ``reader-priority``: new readers join current readers even while a
      writer waits — MyISAM-style table locking under concurrent reads,
      where a steady read stream can starve a writer for a long time.
      This is the behaviour behind AdminConfirm's pathological response
      times in §8.4, which converting the table to InnoDB removes.

    Observers are callables ``fn(mutex, waiter_thread, holders, mode,
    wait_time)`` invoked when a thread that had to block finally acquires
    the lock.  ``holders`` is the snapshot of ``(thread, tran_ctxt)``
    pairs that held the lock at the moment the waiter blocked — exactly
    the information crosstalk needs to answer *who caused the wait*.
    """

    __slots__ = (
        "name",
        "policy",
        "writer_starvation_limit",
        "_kernel_now",
        "holders",
        "mode",
        "_waiters",
        "observers",
        "total_wait_time",
        "wait_count",
        "acquire_count",
    )

    def __init__(
        self,
        name: str = "mutex",
        policy: str = FIFO,
        writer_starvation_limit: Optional[float] = None,
    ):
        if policy not in (FIFO, READER_PRIORITY):
            raise ValueError(f"unknown lock policy {policy!r}")
        self.name = name
        self.policy = policy
        # Under reader-priority, once the oldest queued writer has
        # waited this long, new readers stop bypassing it (None =
        # unbounded starvation).
        self.writer_starvation_limit = writer_starvation_limit
        self._kernel_now = None  # set per acquire for the limit check
        self.holders: Set[SimThread] = set()
        self.mode: Optional[str] = None
        self._waiters: List[_Waiter] = []
        self.observers: List[Callable] = []
        # Statistics
        self.total_wait_time = 0.0
        self.wait_count = 0
        self.acquire_count = 0

    # ------------------------------------------------------------------
    def held_by(self, thread: SimThread) -> bool:
        return thread in self.holders

    def _can_grant(self, mode: str, now: Optional[float] = None) -> bool:
        if not self.holders:
            return True
        if mode == SHARED and self.mode == SHARED:
            if self.policy == READER_PRIORITY:
                return not self._writer_starved(now)
            # FIFO fairness: an exclusive waiter at the head blocks new
            # readers, preventing writer starvation.
            return not self._waiters or self._waiters[0].mode == SHARED
        return False

    def _writer_starved(self, now: Optional[float]) -> bool:
        """True when a queued writer has exceeded the starvation limit."""
        if self.writer_starvation_limit is None or now is None:
            return False
        for waiter in self._waiters:
            if waiter.mode == EXCLUSIVE:
                return now - waiter.enqueued_at >= self.writer_starvation_limit
        return False

    def _grant(self, kernel: "Kernel", thread: SimThread, mode: str) -> None:
        self.holders.add(thread)
        self.mode = mode
        self.acquire_count += 1

    def acquire(self, kernel: "Kernel", thread: SimThread, mode: str) -> bool:
        """Attempt acquisition; returns True if granted immediately."""
        if thread in self.holders:
            raise RuntimeError(f"{thread.name} re-acquiring {self.name}")
        if self._can_grant(mode, kernel.now):
            self._grant(kernel, thread, mode)
            return True
        return False

    def enqueue(self, kernel: "Kernel", thread: SimThread, mode: str) -> Tuple:
        """Block ``thread`` until the lock can be granted.

        Returns the holder snapshot taken at block time.
        """
        # Sorted by tid: ``holders`` is a set, and set order follows
        # per-process object hashes — observers (crosstalk events,
        # profile dumps) must see the same holder order in every
        # process for runs to be byte-reproducible.
        snapshot = tuple(
            (h, h.tran_ctxt)
            for h in sorted(self.holders, key=lambda h: h.tid)
        )
        self._waiters.append(_Waiter(thread, mode, kernel.now))
        return snapshot

    def release(self, kernel: "Kernel", thread: SimThread) -> None:
        if thread not in self.holders:
            raise RuntimeError(f"{thread.name} releasing unheld {self.name}")
        self.holders.discard(thread)
        if not self.holders:
            self.mode = None
            self._wake_next(kernel)

    def _wake_next(self, kernel: "Kernel") -> None:
        """Grant the lock to the next batch of waiters.

        FIFO policy serves the queue head; reader-priority additionally
        skips over queued writers to serve compatible readers behind
        them (the writer keeps starving while readers hold the lock).
        """
        index = 0
        while index < len(self._waiters):
            waiter = self._waiters[index]
            if self._can_grant_to_waiter(waiter):
                self._waiters.pop(index)
                self._grant_waiter(kernel, waiter)
                if waiter.mode == EXCLUSIVE:
                    break
            elif (
                self.policy == READER_PRIORITY
                and waiter.mode == EXCLUSIVE
                and self.mode == SHARED
                and not (
                    self.writer_starvation_limit is not None
                    and kernel.now - waiter.enqueued_at
                    >= self.writer_starvation_limit
                )
            ):
                index += 1  # skip the starving writer; serve readers
            else:
                break

    def _grant_waiter(self, kernel: "Kernel", waiter: _Waiter) -> None:
        self._grant(kernel, waiter.thread, waiter.mode)
        wait_time = kernel.now - waiter.enqueued_at
        self.total_wait_time += wait_time
        self.wait_count += 1
        acquire_syscall = waiter.thread.blocked_on
        kernel.resume(waiter.thread, None)
        if isinstance(acquire_syscall, Acquire):
            acquire_syscall.completed(self, waiter.thread, wait_time)

    def _can_grant_to_waiter(self, waiter: _Waiter) -> bool:
        if not self.holders:
            return True
        return waiter.mode == SHARED and self.mode == SHARED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Mutex {self.name} holders={len(self.holders)} mode={self.mode}>"


class Acquire(Syscall):
    """Acquire ``mutex`` (exclusive by default, ``shared=True`` for read)."""

    __slots__ = ("mutex", "mode", "_holder_snapshot")

    def __init__(self, mutex: Mutex, shared: bool = False):
        self.mutex = mutex
        self.mode = SHARED if shared else EXCLUSIVE
        self._holder_snapshot: Tuple = ()

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        if self.mutex.acquire(kernel, thread, self.mode):
            kernel.resume(thread, None)
        else:
            thread.blocked_on = self
            self._holder_snapshot = self.mutex.enqueue(kernel, thread, self.mode)

    def completed(self, mutex: Mutex, thread: SimThread, wait_time: float) -> None:
        """Called by the mutex when a blocked acquisition is granted."""
        for observer in mutex.observers:
            observer(mutex, thread, self._holder_snapshot, self.mode, wait_time)

    def __repr__(self) -> str:
        return f"Acquire({self.mutex.name}, {self.mode})"


class Release(Syscall):
    """Release a mutex held by the current thread."""

    __slots__ = ("mutex",)

    def __init__(self, mutex: Mutex):
        self.mutex = mutex

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        self.mutex.release(kernel, thread)
        kernel.resume(thread, None)

    def __repr__(self) -> str:
        return f"Release({self.mutex.name})"


class Condition:
    """Condition variable bound to a mutex (Mesa semantics)."""

    __slots__ = ("mutex", "name", "_waiters")

    def __init__(self, mutex: Mutex, name: str = "cond"):
        self.mutex = mutex
        self.name = name
        self._waiters: List[SimThread] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Condition {self.name} waiters={len(self._waiters)}>"


class Wait(Syscall):
    """Atomically release the condition's mutex and block until notified.

    On wakeup the mutex is re-acquired (possibly after more waiting)
    before the thread resumes, as with ``pthread_cond_wait``.
    """

    __slots__ = ("cond",)

    def __init__(self, cond: Condition):
        self.cond = cond

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        self.cond.mutex.release(kernel, thread)
        thread.blocked_on = self
        self.cond._waiters.append(thread)

    def __repr__(self) -> str:
        return f"Wait({self.cond.name})"


class _Reacquire(Acquire):
    """Internal: re-acquire the mutex after a condition wakeup.

    A subclass of :class:`Acquire` on purpose: the post-``Wait``
    reacquisition is a real contended acquisition, so it must take the
    holder snapshot and run the same ``completed`` path that fires
    ``mutex.observers``.  (It once bypassed both, which made the
    Apache-like shared connection queue invisible to crosstalk — the
    paper's §6 measurement point.)
    """

    __slots__ = ()

    def __init__(self, mutex: Mutex):
        super().__init__(mutex, shared=False)

    def __repr__(self) -> str:
        return f"Reacquire({self.mutex.name})"


def _wake_waiter(kernel: "Kernel", cond: Condition, waiter: SimThread) -> None:
    # The waiter resumes by first re-acquiring the mutex; we splice a
    # _Reacquire syscall in as if the thread had yielded it.
    reacquire = _Reacquire(cond.mutex)
    reacquire.execute(kernel, waiter)


class Notify(Syscall):
    """Wake one waiter of a condition.  Caller must hold the mutex."""

    __slots__ = ("cond",)

    def __init__(self, cond: Condition):
        self.cond = cond

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        if not self.cond.mutex.held_by(thread):
            raise RuntimeError(f"notify on {self.cond.name} without holding mutex")
        if self.cond._waiters:
            waiter = self.cond._waiters.pop(0)
            _wake_waiter(kernel, self.cond, waiter)
        kernel.resume(thread, None)

    def __repr__(self) -> str:
        return f"Notify({self.cond.name})"


class NotifyAll(Syscall):
    """Wake all waiters of a condition.  Caller must hold the mutex."""

    __slots__ = ("cond",)

    def __init__(self, cond: Condition):
        self.cond = cond

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        if not self.cond.mutex.held_by(thread):
            raise RuntimeError(f"notify on {self.cond.name} without holding mutex")
        waiters, self.cond._waiters = self.cond._waiters, []
        for waiter in waiters:
            _wake_waiter(kernel, self.cond, waiter)
        kernel.resume(thread, None)

    def __repr__(self) -> str:
        return f"NotifyAll({self.cond.name})"
