"""A simple disk model: positioning time + transfer, FCFS queue.

Haboob's File I/O stage reads page content from disk on cache misses;
modeling the disk as a queued resource (rather than a fixed delay)
makes miss-path latency grow under load, as on the paper's testbed.
Defaults approximate a 2005-era 7200 rpm SATA disk: ~8 ms average
positioning, ~60 MB/s sequential transfer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple, TYPE_CHECKING

from repro.sim.process import Syscall, SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel


class Disk:
    """One spindle serving reads FCFS."""

    def __init__(
        self,
        kernel: "Kernel",
        positioning_time: float = 8e-3,
        transfer_rate: float = 60e6,
        name: str = "disk",
    ):
        if positioning_time < 0 or transfer_rate <= 0:
            raise ValueError("invalid disk parameters")
        self.kernel = kernel
        self.positioning_time = positioning_time
        self.transfer_rate = transfer_rate
        self.name = name
        self._busy = False
        self._queue: Deque[Tuple[SimThread, int]] = deque()
        self.reads_served = 0
        self.bytes_read = 0
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    def service_time(self, size_bytes: int) -> float:
        return self.positioning_time + size_bytes / self.transfer_rate

    def submit(self, thread: SimThread, size_bytes: int) -> None:
        if size_bytes < 0:
            raise ValueError("negative read size")
        self._queue.append((thread, size_bytes))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        thread, size = self._queue.popleft()
        duration = self.service_time(size)
        self.kernel.schedule(duration, self._complete, thread, size, duration)

    def _complete(self, thread: SimThread, size: int, duration: float) -> None:
        self.reads_served += 1
        self.bytes_read += size
        self.busy_time += duration
        self.kernel.resume(thread, size)
        self._start_next()

    def utilization(self, since: float = 0.0) -> float:
        elapsed = self.kernel.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Disk {self.name} busy={self._busy} queued={len(self._queue)}>"


class ReadDisk(Syscall):
    """Read ``size_bytes`` from the disk; blocks until the I/O completes."""

    __slots__ = ("disk", "size_bytes")

    def __init__(self, disk: Disk, size_bytes: int):
        self.disk = disk
        self.size_bytes = size_bytes

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        thread.blocked_on = self
        self.disk.submit(thread, self.size_bytes)

    def __repr__(self) -> str:
        return f"ReadDisk({self.disk.name}, {self.size_bytes}B)"
