"""Simulation kernel: virtual clock, event queue, thread scheduler.

The kernel owns a priority queue of timestamped callbacks and a registry
of live :class:`~repro.sim.process.SimThread` coroutines.  All
application code in this repository runs on top of it; nothing ever
reads the wall clock, so a given seed always produces the same
execution, event for event.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro import telemetry as _telemetry
from repro.sim.process import SimThread

# Lazy-purge thresholds: rebuild the heap only when it is mostly dead
# weight and big enough for the rebuild to matter.
_PURGE_MIN_QUEUE = 64

# With telemetry on, refresh the kernel gauges every this many events
# rather than on every pop.
_TELEMETRY_GAUGE_INTERVAL = 64


class ScheduledEvent:
    """A cancellable callback scheduled at a point in virtual time."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "kernel")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference while the event sits in a kernel's queue, so
        # cancellation can be counted (and the heap purged once
        # cancelled entries dominate it).  Detached when the event is
        # popped or purged.
        self.kernel: Optional["Kernel"] = None

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self.kernel
        if kernel is not None:
            kernel._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimulationError(Exception):
    """Raised for misuse of simulation primitives (double release, etc.)."""


class Deadlock(SimulationError):
    """Raised when the event queue drains while threads are still blocked."""


class Kernel:
    """Discrete-event simulation kernel.

    Typical use::

        kernel = Kernel()
        kernel.spawn(my_generator(), name="worker")
        kernel.run(until=10.0)

    Parameters
    ----------
    strict:
        When true (the default), :meth:`run` raises :class:`Deadlock` if
        the event queue empties while spawned threads remain blocked.
    """

    def __init__(self, strict: bool = True, livelock_limit: int = 2_000_000):
        self.now: float = 0.0
        self.strict = strict
        # A model bug (e.g. a zero-cost request loop against a
        # zero-latency server) can fire events forever without advancing
        # virtual time; fail loudly instead of spinning silently.
        self.livelock_limit = livelock_limit
        self._same_time_events = 0
        self._queue: List[ScheduledEvent] = []
        self._seq = 0
        # Only live threads: finished/failed threads are reaped (see
        # :meth:`reap`), so deadlock checks and live_threads stay O(live)
        # however many short-lived threads a run spawns.
        self._threads: Dict[int, SimThread] = {}
        self._next_tid = 0
        self._stopped = False
        # Fault injector (repro.faults.install_faults); endpoints capture
        # their per-rule state from it at construction.  None = lossless.
        self.faults: Any = None
        # Cancelled events still sitting in the heap; once they dominate
        # it the heap is rebuilt without them (lazy purge).
        self._cancelled = 0
        # Telemetry is captured once at construction so a disabled run
        # pays nothing in the event loop (no global lookups per event).
        tele = _telemetry.ACTIVE
        if tele is not None and tele.wants_metrics:
            m = tele.metrics
            self._tele_events = m.counter(
                "repro_sim_events_fired_total", "kernel events executed"
            )
            self._tele_cancelled = m.counter(
                "repro_sim_events_cancelled_total", "scheduled events cancelled"
            )
            self._tele_heap = m.gauge(
                "repro_sim_event_heap_size", "entries in the kernel event heap"
            )
            self._tele_threads = m.gauge(
                "repro_sim_live_threads", "live simulated threads (runnable queue)"
            )
            self._tele_vtime = m.gauge(
                "repro_sim_virtual_time_seconds", "current virtual time"
            )
            self._tele_drift = m.gauge(
                "repro_sim_time_drift",
                "wall-clock seconds consumed per virtual second",
            )
        else:
            self._tele_events = None
            self._tele_cancelled = None
            self._tele_heap = None
            self._tele_threads = None
            self._tele_vtime = None
            self._tele_drift = None

    def _refresh_telemetry_gauges(self) -> None:
        self._tele_heap.set(len(self._queue))
        self._tele_threads.set(len(self._threads))
        self._tele_vtime.set(self.now)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledEvent:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        event = ScheduledEvent(self.now + delay, self._seq, fn, args)
        event.kernel = self
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def _note_cancelled(self) -> None:
        """Count a cancellation; purge the heap when mostly cancelled."""
        self._cancelled += 1
        if self._tele_cancelled is not None:
            self._tele_cancelled.inc()
        if (
            len(self._queue) > _PURGE_MIN_QUEUE
            and self._cancelled * 2 > len(self._queue)
        ):
            self._purge_cancelled()

    def _purge_cancelled(self) -> None:
        """Rebuild the heap without cancelled events (O(live))."""
        live = []
        for event in self._queue:
            if event.cancelled:
                event.kernel = None
            else:
                live.append(event)
        self._queue = live
        heapq.heapify(self._queue)
        self._cancelled = 0

    def call_soon(self, fn: Callable, *args: Any) -> ScheduledEvent:
        """Run ``fn(*args)`` at the current virtual time, after the

        currently executing event finishes.
        """
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def spawn(
        self,
        generator: Iterator,
        name: Optional[str] = None,
        stage: Any = None,
    ) -> SimThread:
        """Create a thread from a generator and start it immediately.

        ``stage`` attaches the thread to a profiling stage runtime (see
        :mod:`repro.core.profiler`); it may be ``None`` for unprofiled
        threads such as client emulators.
        """
        tid = self._next_tid
        self._next_tid += 1
        thread = SimThread(self, generator, tid, name or f"thread-{tid}", stage)
        self._threads[tid] = thread
        self.call_soon(thread.step, None)
        return thread

    def reap(self, thread: SimThread) -> None:
        """Drop a finished thread from the registry.

        Called from :meth:`SimThread.finish` / ``fail``; keeps
        ``live_threads`` and the deadlock check proportional to the
        number of *live* threads instead of every thread ever spawned.
        """
        self._threads.pop(thread.tid, None)

    def resume(self, thread: SimThread, value: Any = None) -> None:
        """Unblock ``thread``, delivering ``value`` as the result of the

        syscall it is blocked on.  The thread runs at the current time.
        """
        self.call_soon(thread.step, value)

    def throw_in(self, thread: SimThread, exc: BaseException) -> None:
        """Raise ``exc`` inside ``thread`` at its current yield point."""
        self.call_soon(thread.throw, exc)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the virtual time at which the run stopped.
        """
        self._stopped = False
        tele_events = self._tele_events
        if tele_events is not None:
            wall_start = time.perf_counter()
            virtual_start = self.now
            fired = 0
        while self._queue and not self._stopped:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                event.kernel = None
                self._cancelled -= 1
                continue
            event.kernel = None
            if until is not None and event.time > until:
                # Put it back for a later run() call and stop the clock
                # exactly at the horizon.
                event.kernel = self
                heapq.heappush(self._queue, event)
                self.now = until
                return self.now
            if event.time < self.now:
                raise SimulationError("time went backwards")
            if event.time == self.now:
                self._same_time_events += 1
                if self._same_time_events > self.livelock_limit:
                    raise SimulationError(
                        f"livelock: {self.livelock_limit} events fired at "
                        f"t={self.now} without the clock advancing"
                    )
            else:
                self._same_time_events = 0
            self.now = event.time
            event.fn(*event.args)
            if tele_events is not None:
                tele_events.inc()
                fired += 1
                if fired % _TELEMETRY_GAUGE_INTERVAL == 0:
                    self._refresh_telemetry_gauges()
        if tele_events is not None:
            elapsed_virtual = self.now - virtual_start
            if elapsed_virtual > 0:
                self._tele_drift.set(
                    (time.perf_counter() - wall_start) / elapsed_virtual
                )
            self._refresh_telemetry_gauges()
        if until is not None and not self._stopped:
            self.now = max(self.now, until)
        if self.strict and not self._stopped and until is None:
            # Bounded runs legitimately leave server threads blocked on
            # accept queues; only an unbounded run that drains the event
            # queue with blocked non-daemon threads is a deadlock.
            blocked = [
                t
                for t in self._threads.values()
                if t.alive and t.blocked_on and not t.daemon
            ]
            if blocked and not self._queue:
                names = ", ".join(
                    f"{t.name} on {t.blocked_on}" for t in blocked[:8]
                )
                raise Deadlock(f"all events drained with blocked threads: {names}")
        return self.now

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_threads(self) -> List[SimThread]:
        """Threads that have not yet finished."""
        return [t for t in self._threads.values() if t.alive]

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events (O(1))."""
        return len(self._queue) - self._cancelled
