"""Simulation kernel: virtual clock, indexed timer wheel, thread scheduler.

The kernel owns a timestamp-indexed timer wheel of cancellable callbacks
and a registry of live :class:`~repro.sim.process.SimThread` coroutines.
All application code in this repository runs on top of it; nothing ever
reads the wall clock, so a given seed always produces the same
execution, event for event.

Event-queue design (the "kernel raw-speed overhaul")
----------------------------------------------------

The original kernel kept one binary heap of ``ScheduledEvent`` objects
ordered by a Python-level ``__lt__``; every push and pop paid ``O(log
n)`` *interpreted* comparisons, and same-timestamp storms (every
``call_soon``/``resume``) re-entered the heap per event.  The rewrite is
a two-level structure — a hashed timing wheel with an exact-time cursor:

- ``_wheel``: a dict mapping each *exact* pending timestamp to the list
  of events scheduled at it (its bucket).  Scheduling is an O(1) dict
  append; buckets are in FIFO order by construction because the global
  sequence number only ever grows.  A bucket entry is either a
  cancellable :class:`ScheduledEvent` or — for the spawn/resume/Delay
  thread wakeups that dominate transaction workloads and that nothing
  can ever hold a handle to — a bare ``(thread, value)`` pair, which
  costs neither an event object nor a bound method per wakeup.
- ``_times``: a heap of the distinct pending timestamps (plain floats,
  so every comparison runs in C).  One heap operation per *timestamp*,
  not per event: a bucket of ten thousand same-time events costs one
  pop, and the whole run of events drains in a tight loop — the batched
  same-timestamp dispatch.

Cancellation just flags the event (O(1)); a cancelled event is skipped
when its bucket fires, and once cancelled entries dominate the wheel it
is rebuilt without them (lazy purge), exactly as the old heap was.  This
is what makes the dominant schedule-then-cancel pattern (RPC
``RetryPolicy`` timeouts cancelled by the arriving response) cheap: no
heap traffic for the event itself, only for its (often shared, often
already pending) timestamp.

A classical *hierarchical* timer wheel quantises time into ticks; this
kernel deliberately does not, because runs must be byte-reproducible and
virtual timestamps are exact floats — rounding a timeout to a tick
boundary would change simulation results.  Indexing on the exact
timestamp keeps O(1) schedule/cancel while preserving exact
(time, insertion-order) firing semantics.
"""

from __future__ import annotations

import heapq
import sys
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro import telemetry as _telemetry
from repro.sim.process import SimThread

# Lazy-purge thresholds: rebuild the wheel only when it is mostly dead
# weight and big enough for the rebuild to matter.
_PURGE_MIN_QUEUE = 64

# Cap on the kernel's freelist of dead SimThread shells.  Thread-churn
# workloads (one thread per request/session) otherwise allocate and
# collect a full SimThread — plus its joiners and call-stack lists — per
# transaction; the cap bounds the memory a burst can pin.
_THREAD_FREELIST_MAX = 1024

# With telemetry on, refresh the kernel gauges every this many events
# rather than on every pop.
_TELEMETRY_GAUGE_INTERVAL = 64

_INF = float("inf")

_heappush = heapq.heappush
_heappop = heapq.heappop
_getrefcount = sys.getrefcount

# getrefcount() value for a just-popped shell with NO outside handles:
# the local variable in spawn() plus getrefcount's own argument
# binding.  Anything higher means user code still holds the dead
# thread (a pending Join target, a stored handle, a not-yet-fired
# ``thread.step`` timer) and the shell must not be reused.
_FREE_SHELL_REFS = 2


class ScheduledEvent:
    """A cancellable callback scheduled at a point in virtual time."""

    __slots__ = ("time", "fn", "args", "cancelled", "kernel")

    def __init__(self, time: float, fn: Callable, args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference while the event sits in a kernel's wheel, so
        # cancellation can be counted (and the wheel purged once
        # cancelled entries dominate it).  Detached when the event's
        # bucket is dispatched or the event is purged.
        self.kernel: Optional["Kernel"] = None

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self.kernel
        if kernel is not None:
            kernel._note_cancelled()


class SimulationError(Exception):
    """Raised for misuse of simulation primitives (double release, etc.)."""


class Deadlock(SimulationError):
    """Raised when the event queue drains while threads are still blocked."""


class Kernel:
    """Discrete-event simulation kernel.

    Typical use::

        kernel = Kernel()
        kernel.spawn(my_generator(), name="worker")
        kernel.run(until=10.0)

    Parameters
    ----------
    strict:
        When true (the default), :meth:`run` raises :class:`Deadlock` if
        the event queue empties while spawned threads remain blocked.
    """

    __slots__ = (
        "now",
        "strict",
        "livelock_limit",
        "_same_time_events",
        "_wheel",
        "_times",
        "_num_events",
        "_threads",
        "_next_tid",
        "_thread_freelist",
        "_stopped",
        "faults",
        "_cancelled",
        "_tele_events",
        "_tele_cancelled",
        "_tele_heap",
        "_tele_threads",
        "_tele_vtime",
        "_tele_drift",
    )

    def __init__(self, strict: bool = True, livelock_limit: int = 2_000_000):
        self.now: float = 0.0
        self.strict = strict
        # A model bug (e.g. a zero-cost request loop against a
        # zero-latency server) can fire events forever without advancing
        # virtual time; fail loudly instead of spinning silently.
        self.livelock_limit = livelock_limit
        self._same_time_events = 0
        # Timer wheel: exact timestamp -> FIFO bucket of events, plus a
        # float heap of the distinct pending timestamps (see module
        # docstring).  ``_num_events`` counts every event in the wheel,
        # cancelled ones included.
        self._wheel: Dict[float, List[ScheduledEvent]] = {}
        self._times: List[float] = []
        self._num_events = 0
        # Only live threads: finished/failed threads are reaped (see
        # :meth:`reap`), so deadlock checks and live_threads stay O(live)
        # however many short-lived threads a run spawns.
        self._threads: Dict[int, SimThread] = {}
        self._next_tid = 0
        # Field-clean dead SimThread shells for reuse by spawn() (see
        # :meth:`reap`); bounded by _THREAD_FREELIST_MAX.
        self._thread_freelist: List[SimThread] = []
        self._stopped = False
        # Fault injector (repro.faults.install_faults); endpoints capture
        # their per-rule state from it at construction.  None = lossless.
        self.faults: Any = None
        # Cancelled events still sitting in the wheel; once they dominate
        # it the wheel is rebuilt without them (lazy purge).
        self._cancelled = 0
        # Telemetry is captured once at construction so a disabled run
        # pays nothing in the event loop (no global lookups per event).
        tele = _telemetry.ACTIVE
        if tele is not None and tele.wants_metrics:
            m = tele.metrics
            self._tele_events = m.counter(
                "repro_sim_events_fired_total", "kernel events executed"
            )
            self._tele_cancelled = m.counter(
                "repro_sim_events_cancelled_total", "scheduled events cancelled"
            )
            self._tele_heap = m.gauge(
                "repro_sim_event_heap_size", "entries in the kernel timer wheel"
            )
            self._tele_threads = m.gauge(
                "repro_sim_live_threads", "live simulated threads (runnable queue)"
            )
            self._tele_vtime = m.gauge(
                "repro_sim_virtual_time_seconds", "current virtual time"
            )
            self._tele_drift = m.gauge(
                "repro_sim_time_drift",
                "wall-clock seconds consumed per virtual second",
            )
        else:
            self._tele_events = None
            self._tele_cancelled = None
            self._tele_heap = None
            self._tele_threads = None
            self._tele_vtime = None
            self._tele_drift = None

    def _refresh_telemetry_gauges(self) -> None:
        self._tele_heap.set(self._num_events)
        self._tele_threads.set(len(self._threads))
        self._tele_vtime.set(self.now)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> ScheduledEvent:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        if delay != delay or delay == _INF:
            # NaN slips past ``delay < 0`` (all comparisons are False)
            # and, like +inf, would corrupt the wheel's time ordering.
            raise ValueError("delay must be finite (delay=%r)" % delay)
        when = self.now + delay
        event = ScheduledEvent(when, fn, args)
        event.kernel = self
        self._num_events += 1
        bucket = self._wheel.get(when)
        if bucket is None:
            self._wheel[when] = [event]
            _heappush(self._times, when)
        else:
            bucket.append(event)
        return event

    def call_soon(self, fn: Callable, *args: Any) -> ScheduledEvent:
        """Run ``fn(*args)`` at the current virtual time, after the

        currently executing event finishes.
        """
        # Inlined zero-delay schedule: this is the hottest kernel entry
        # point (every resume/spawn lands here), so it skips the delay
        # validation and the addition.
        when = self.now
        event = ScheduledEvent(when, fn, args)
        event.kernel = self
        self._num_events += 1
        bucket = self._wheel.get(when)
        if bucket is None:
            self._wheel[when] = [event]
            _heappush(self._times, when)
        else:
            bucket.append(event)
        return event

    def _note_cancelled(self) -> None:
        """Count a cancellation; purge the wheel when mostly cancelled."""
        self._cancelled += 1
        if self._tele_cancelled is not None:
            self._tele_cancelled.inc()
        if (
            self._num_events > _PURGE_MIN_QUEUE
            and self._cancelled * 2 > self._num_events
        ):
            self._purge_cancelled()

    def _purge_cancelled(self) -> None:
        """Rebuild the wheel without cancelled events (O(live)).

        Mutates ``self._wheel`` and ``self._times`` *in place*: a purge
        can fire mid-:meth:`run` (a dispatched handler cancelling
        pending timers is exactly the RPC retry pattern the wheel is
        built for), and ``run()`` holds both structures — and the
        wheel's bound ``pop`` — as locals.  Rebinding the attributes to
        fresh objects would strand the running loop on the stale pair:
        events scheduled after the purge would never fire, and live
        events would be double-tracked.
        """
        wheel = self._wheel
        live_buckets: Dict[float, List[ScheduledEvent]] = {}
        total = 0
        for when, bucket in wheel.items():
            live = []
            for event in bucket:
                if event.__class__ is tuple:
                    live.append(event)  # wakeup pairs are never cancelled
                elif event.cancelled:
                    event.kernel = None
                else:
                    live.append(event)
            if live:
                live_buckets[when] = live
                total += len(live)
        wheel.clear()
        wheel.update(live_buckets)
        times = self._times
        times[:] = live_buckets
        heapq.heapify(times)
        self._num_events = total
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------
    def spawn(
        self,
        generator: Iterator,
        name: Optional[str] = None,
        stage: Any = None,
    ) -> SimThread:
        """Create a thread from a generator and start it immediately.

        ``stage`` attaches the thread to a profiling stage runtime (see
        :mod:`repro.core.profiler`); it may be ``None`` for unprofiled
        threads such as client emulators.
        """
        tid = self._next_tid
        self._next_tid += 1
        freelist = self._thread_freelist
        if freelist:
            thread = freelist.pop()
            if _getrefcount(thread) == _FREE_SHELL_REFS:
                # Inlined thread._reinit(generator, tid, name, stage):
                # spawn is the churn hot path and the call frame is
                # measurable.  Keep in sync with SimThread._reinit.
                thread.generator = generator
                thread.tid = tid
                thread._name = name
                thread.stage = stage
                thread.daemon = False
                thread.alive = True
                thread.result = None
                thread.failure = None
                thread.blocked_on = None
                thread.joiners.clear()
                thread.call_stack.clear()
                thread.tran_ctxt = None
            else:
                # Someone still holds the dead thread's handle (e.g. a
                # Join target kept across runs): retire the shell so
                # that handle keeps observing the finished thread, and
                # allocate fresh.  Reuse therefore can never alias a
                # reachable thread.
                thread = SimThread(self, generator, tid, name, stage)
        else:
            thread = SimThread(self, generator, tid, name, stage)
        self._threads[tid] = thread
        # Inlined call_soon(thread.step, None): spawn is the thread-churn
        # hot path.  The wakeup goes on the wheel as a bare
        # ``(thread, value)`` pair instead of a ScheduledEvent — nothing
        # can hold or cancel it (spawn returns the thread, not the
        # event), a dead thread's step() is a no-op anyway, and the pair
        # costs neither the event object nor the bound method.
        when = self.now
        self._num_events += 1
        bucket = self._wheel.get(when)
        if bucket is None:
            self._wheel[when] = [(thread, None)]
            _heappush(self._times, when)
        else:
            bucket.append((thread, None))
        return thread

    def reap(self, thread: SimThread) -> None:
        """Drop a finished thread from the registry.

        Called from :meth:`SimThread.finish` / ``fail``; keeps
        ``live_threads`` and the deadlock check proportional to the
        number of *live* threads instead of every thread ever spawned.

        A cleanly finished thread's shell goes on a bounded freelist for
        :meth:`spawn` to recycle.  The shell keeps its ``result`` and
        dead state until actually reused, so the common pattern of
        reading ``thread.result`` right after a run still works — but a
        handle held across later spawns may observe the shell serving a
        *new* thread.  Join dead threads promptly; failed threads are
        never recycled (their ``failure`` stays inspectable forever).
        """
        self._threads.pop(thread.tid, None)
        if thread.failure is None:
            freelist = self._thread_freelist
            if len(freelist) < _THREAD_FREELIST_MAX:
                # Drop heavyweight references now (the generator frame,
                # the transaction context); scalar state is scrubbed on
                # reuse by _reinit.
                thread.generator = None
                thread.blocked_on = None
                thread.tran_ctxt = None
                thread.stage = None
                freelist.append(thread)

    def resume(self, thread: SimThread, value: Any = None) -> None:
        """Unblock ``thread``, delivering ``value`` as the result of the

        syscall it is blocked on.  The thread runs at the current time.
        """
        # Inlined call_soon(thread.step, value) — the hottest kernel
        # entry point after the event loop itself.  Same bare-pair
        # representation as spawn(): resume wakeups are uncancellable
        # by construction (no caller ever sees the event).
        when = self.now
        self._num_events += 1
        bucket = self._wheel.get(when)
        if bucket is None:
            self._wheel[when] = [(thread, value)]
            _heappush(self._times, when)
        else:
            bucket.append((thread, value))

    def throw_in(self, thread: SimThread, exc: BaseException) -> None:
        """Raise ``exc`` inside ``thread`` at its current yield point."""
        self.call_soon(thread.throw, exc)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or ``until`` is reached.

        Returns the virtual time at which the run stopped.
        """
        self._stopped = False
        # A previous horizon-bounded run() may have returned mid-batch
        # of same-timestamp events; the livelock counter is per-run
        # state and must not leak across segments.
        self._same_time_events = 0
        wheel = self._wheel
        times = self._times
        pop_bucket = wheel.pop
        heappop = _heappop
        horizon = _INF if until is None else until
        livelock_limit = self.livelock_limit
        tele_events = self._tele_events
        if tele_events is not None:
            wall_start = time.perf_counter()
            virtual_start = self.now
            fired_total = 0
        now = self.now
        while times:
            when = heappop(times)
            if when > horizon:
                # Leave the bucket for a later run() call and stop the
                # clock exactly at the horizon.
                _heappush(times, when)
                self.now = until
                return until
            if when < now:
                raise SimulationError("time went backwards")
            batch = pop_bucket(when)
            if len(batch) == 1:
                # Fast path: one event at this timestamp (the common
                # case for distinct timer deadlines).  No batch slicing
                # is ever needed, so no try/except either.  A bucket
                # entry is either a ScheduledEvent or a bare
                # ``(thread, value)`` wakeup pair (spawn/resume/Delay);
                # pairs are uncancellable by construction.
                event = batch[0]
                self._num_events -= 1
                if event.__class__ is tuple:
                    thread, value = event
                    if when > now:
                        self.now = now = when
                        self._same_time_events = 0
                    else:
                        same = self._same_time_events + 1
                        self._same_time_events = same
                        if same > livelock_limit:
                            raise SimulationError(
                                f"livelock: {livelock_limit} events fired "
                                f"at t={now} without the clock advancing"
                            )
                    thread.step(value)
                    if tele_events is not None:
                        tele_events.inc()
                        fired_total += 1
                        if fired_total % _TELEMETRY_GAUGE_INTERVAL == 0:
                            self._refresh_telemetry_gauges()
                    if self._stopped:
                        break
                    continue
                event.kernel = None
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                if when > now:
                    self.now = now = when
                    self._same_time_events = 0
                else:
                    same = self._same_time_events + 1
                    self._same_time_events = same
                    if same > livelock_limit:
                        raise SimulationError(
                            f"livelock: {livelock_limit} events fired at "
                            f"t={now} without the clock advancing"
                        )
                event.fn(*event.args)
                if tele_events is not None:
                    tele_events.inc()
                    fired_total += 1
                    if fired_total % _TELEMETRY_GAUGE_INTERVAL == 0:
                        self._refresh_telemetry_gauges()
                if self._stopped:
                    break
                continue
            # Batched dispatch: detach the whole bucket first so a
            # cancel() from inside the batch cannot touch the wheel's
            # counters (the events are in flight, invisible to purge).
            self._num_events -= len(batch)
            cancelled_in_batch = 0
            for event in batch:
                if event.__class__ is not tuple:
                    event.kernel = None
                    if event.cancelled:
                        cancelled_in_batch += 1
            if cancelled_in_batch:
                self._cancelled -= cancelled_in_batch
                if cancelled_in_batch == len(batch):
                    continue
            if when > now:
                self.now = now = when
                same = -1  # the first event at a new time resets the count
            else:
                same = self._same_time_events
            fired = 0
            event = None
            try:
                for event in batch:
                    if event.__class__ is tuple:
                        event[0].step(event[1])
                    elif event.cancelled:
                        continue
                    else:
                        event.fn(*event.args)
                    fired += 1
                    if tele_events is not None:
                        tele_events.inc()
                        fired_total += 1
                        if fired_total % _TELEMETRY_GAUGE_INTERVAL == 0:
                            self._refresh_telemetry_gauges()
                    if self._stopped:
                        self._requeue(when, batch, event)
                        break
            except BaseException:
                # The raising event is consumed; everything after it
                # goes back so a later run() resumes exactly there.
                self._requeue(when, batch, event)
                self._same_time_events = max(same + fired, 0)
                raise
            same += fired
            self._same_time_events = max(same, 0)
            if same > livelock_limit:
                raise SimulationError(
                    f"livelock: {livelock_limit} events fired at "
                    f"t={now} without the clock advancing"
                )
            if self._stopped:
                break
        if tele_events is not None:
            elapsed_virtual = self.now - virtual_start
            if elapsed_virtual > 0:
                self._tele_drift.set(
                    (time.perf_counter() - wall_start) / elapsed_virtual
                )
            self._refresh_telemetry_gauges()
        if until is not None and not self._stopped:
            self.now = max(self.now, until)
        if self.strict and not self._stopped and until is None:
            # Bounded runs legitimately leave server threads blocked on
            # accept queues; only an unbounded run that drains the event
            # queue with blocked non-daemon threads is a deadlock.
            blocked = [
                t
                for t in self._threads.values()
                if t.alive and t.blocked_on and not t.daemon
            ]
            if blocked and not self._wheel:
                names = ", ".join(
                    f"{t.name} on {t.blocked_on}" for t in blocked[:8]
                )
                raise Deadlock(f"all events drained with blocked threads: {names}")
        return self.now

    def _requeue(self, when: float, batch: List[ScheduledEvent], last) -> None:
        """Put the unfired tail of an interrupted batch back on the wheel.

        ``last`` is the batch entry that stopped the dispatch (it is
        consumed); everything after it is re-attached in order, ahead of
        any same-timestamp events scheduled while the batch ran.
        """
        # Identity scan, not list.index(): wakeup pairs compare by
        # value, so two equal (thread, value) pairs in one bucket would
        # alias under ``==`` and replay an extra event.
        cut = 0
        for index, event in enumerate(batch):
            if event is last:
                cut = index
                break
        rest = batch[cut + 1 :]
        if not rest:
            return
        for event in rest:
            if event.__class__ is not tuple:
                event.kernel = self
                if event.cancelled:
                    self._cancelled += 1
        existing = self._wheel.get(when)
        if existing is None:
            self._wheel[when] = rest
            _heappush(self._times, when)
        else:
            rest.extend(existing)
            self._wheel[when] = rest
        self._num_events += len(rest)

    def stop(self) -> None:
        """Stop :meth:`run` after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_threads(self) -> List[SimThread]:
        """Threads that have not yet finished."""
        return [t for t in self._threads.values() if t.alive]

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events (O(1))."""
        return self._num_events - self._cancelled
