"""Contended CPU resource with preemptive round-robin scheduling.

Every unit of work in a simulated application is expressed as a CPU
*service demand* in seconds on a :class:`CPU`.  Cores serve demands in
round-robin time slices (default quantum 1 ms, as on a contemporary
Linux kernel); when all cores are busy, threads queue.  Preemption
matters: a thread holding a table lock across a long CPU burst must be
able to make *other* threads block on the lock rather than on the CPU —
that interleaving is where the paper's crosstalk numbers (Table 1) come
from.

As an optimisation (and to keep uncontended timing exact), a job that
has no competitors runs to completion in a single scheduled event; if
new work arrives meanwhile, the extended slice is preempted and
round-robin slicing takes over.  Pass ``quantum=None`` for
run-to-completion FCFS with no preemption.

On completion of each demand the CPU notifies the owning thread's stage
runtime, which is where the sampling profiler attributes profile samples
(annotated by call path and transaction context).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, TYPE_CHECKING

from repro.sim.process import Syscall, SimThread

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

_EPSILON = 1e-12


class _Job:
    __slots__ = ("thread", "remaining", "total")

    def __init__(self, thread: SimThread, amount: float):
        self.thread = thread
        self.remaining = amount
        self.total = amount


class _Slice:
    __slots__ = ("job", "event", "started_at", "length", "extended")

    def __init__(self, job: _Job, event, started_at: float, length: float, extended: bool):
        self.job = job
        self.event = event
        self.started_at = started_at
        self.length = length
        self.extended = extended


class CPU:
    """A bank of identical cores serving CPU demands round-robin.

    Parameters
    ----------
    kernel:
        Owning kernel.
    cores:
        Number of cores (1 reproduces the paper's single bottleneck CPU
        per tier).
    quantum:
        Time-slice length in seconds under contention; ``None`` disables
        preemption entirely (run-to-completion FCFS).
    name:
        For diagnostics and utilization reports.
    clock_hz:
        Cycle-to-seconds conversion for work expressed in cycles (the VM
        emulator reports costs in cycles).  The paper's testbed is a
        2.4 GHz Xeon.
    """

    def __init__(
        self,
        kernel: "Kernel",
        cores: int = 1,
        quantum: Optional[float] = 1e-3,
        name: str = "cpu",
        clock_hz: float = 2.4e9,
    ):
        if cores < 1:
            raise ValueError("need at least one core")
        if quantum is not None and quantum <= 0:
            raise ValueError("quantum must be positive or None")
        self.kernel = kernel
        self.cores = cores
        self.quantum = quantum
        self.name = name
        self.clock_hz = clock_hz
        self._run_queue: Deque[_Job] = deque()
        self._slices: List[_Slice] = []
        self.busy_time = 0.0
        self.total_demand = 0.0
        self.completed_jobs = 0

    # ------------------------------------------------------------------
    def seconds_for_cycles(self, cycles: float) -> float:
        """Convert a cycle count into seconds at this CPU's clock."""
        return cycles / self.clock_hz

    def submit(self, thread: SimThread, amount: float) -> None:
        """Request ``amount`` seconds of service for ``thread``."""
        if amount < 0:
            raise ValueError("negative CPU demand")
        self.total_demand += amount
        self._run_queue.append(_Job(thread, amount))
        if len(self._slices) >= self.cores and self.quantum is not None:
            self._preempt_extended_slices()
        self._dispatch()

    # ------------------------------------------------------------------
    def _preempt_extended_slices(self) -> None:
        """Cut short run-to-completion slices so new arrivals get served."""
        for running in list(self._slices):
            if not running.extended:
                continue
            running.event.cancel()
            self._slices.remove(running)
            elapsed = self.kernel.now - running.started_at
            self.busy_time += elapsed
            running.job.remaining -= elapsed
            if running.job.remaining <= _EPSILON:
                self._complete(running.job)
            else:
                self._run_queue.append(running.job)

    def _dispatch(self) -> None:
        slices = self._slices
        run_queue = self._run_queue
        cores = self.cores
        kernel = self.kernel
        while len(slices) < cores and run_queue:
            job = run_queue.popleft()
            # With no competitors (and for quantum=None CPUs), run to
            # completion — exact timing, one event.  Otherwise serve one
            # quantum and requeue.
            extended = self.quantum is None or not run_queue
            if extended:
                length = job.remaining
            else:
                length = min(self.quantum, job.remaining)
            current = _Slice(job, None, kernel.now, length, extended)
            current.event = kernel.schedule(length, self._slice_done, current)
            slices.append(current)

    def _slice_done(self, current: _Slice) -> None:
        # The completed slice rides on its own event, so no end-time
        # scan is needed; _slices is at most ``cores`` entries.
        self._slices.remove(current)
        self.busy_time += current.length
        job = current.job
        job.remaining -= current.length
        if job.remaining <= _EPSILON:
            self._complete(job)
        else:
            self._run_queue.append(job)
        self._dispatch()

    def _complete(self, job: _Job) -> None:
        self.completed_jobs += 1
        thread = job.thread
        if thread.stage is not None:
            thread.stage.on_cpu(thread, job.total)
        self.kernel.resume(thread, job.total)

    # ------------------------------------------------------------------
    def utilization(self, since: float = 0.0) -> float:
        """Fraction of core-time spent busy since virtual time ``since``."""
        elapsed = self.kernel.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.cores))

    @property
    def queue_length(self) -> int:
        """Jobs waiting for a core (running slices excluded)."""
        return len(self._run_queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CPU {self.name} cores={self.cores} running={len(self._slices)}>"


class UseCPU(Syscall):
    """Consume ``amount`` seconds of CPU service on ``cpu``.

    The thread blocks until its full demand has been served (possibly
    across many time slices).  The syscall result is the amount served.
    """

    __slots__ = ("cpu", "amount")

    def __init__(self, cpu: CPU, amount: float):
        self.cpu = cpu
        self.amount = amount

    def execute(self, kernel: "Kernel", thread: SimThread) -> None:
        thread.blocked_on = self
        self.cpu.submit(thread, self.amount)

    def __repr__(self) -> str:
        return f"UseCPU({self.cpu.name}, {self.amount:.6g}s)"
