"""Threads as coroutines and the syscall protocol.

A simulated thread is a Python generator that ``yield``s *syscall*
objects — requests to the kernel such as :class:`Delay`, CPU use, mutex
operations or channel sends.  The kernel (or the object implementing
the syscall) later resumes the generator with the syscall's result.
Subroutines compose with plain ``yield from``.

Each thread also carries the state Whodunit needs: an explicit call
stack of frame names (the call-path profiler reads it at each sample)
and the thread's current transaction context.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Any, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Kernel

_INF = float("inf")


class Syscall:
    """Base class for requests a thread yields to the kernel.

    Subclasses implement :meth:`execute`.  An implementation either
    resumes the thread immediately via ``kernel.resume(thread, value)``
    or records the thread as blocked and arranges for something else to
    resume it later.
    """

    # Without slots on the base class, every syscall instance would
    # carry a ``__dict__`` no matter what its subclass declares — and
    # syscalls are allocated on nearly every simulated operation.
    __slots__ = ()

    def execute(self, kernel: "Kernel", thread: "SimThread") -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return type(self).__name__


class Delay(Syscall):
    """Sleep for ``dt`` units of virtual time (no CPU consumed)."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise ValueError("negative delay")
        if dt != dt or dt == _INF:
            # NaN slips past ``dt < 0`` and, like +inf, would corrupt
            # the kernel wheel's time ordering when the sleep fires.
            raise ValueError("delay must be finite (dt=%r)" % dt)
        self.dt = dt

    def execute(self, kernel: "Kernel", thread: "SimThread") -> None:
        # Inlined kernel.schedule(dt, thread.step, None): a sleep is the
        # single most common timer, nothing ever holds (or cancels) its
        # event, so the wakeup goes on the wheel as a bare
        # ``(thread, value)`` pair — no ScheduledEvent, no bound method.
        thread.blocked_on = self
        when = kernel.now + self.dt
        kernel._num_events += 1
        bucket = kernel._wheel.get(when)
        if bucket is None:
            kernel._wheel[when] = [(thread, None)]
            _heappush(kernel._times, when)
        else:
            bucket.append((thread, None))

    def __repr__(self) -> str:
        return f"Delay({self.dt})"


class Exit(Syscall):
    """Terminate the current thread immediately."""

    __slots__ = ()

    def execute(self, kernel: "Kernel", thread: "SimThread") -> None:
        thread.finish(None)


class Join(Syscall):
    """Block until another thread finishes; result is its return value."""

    __slots__ = ("target",)

    def __init__(self, target: "SimThread"):
        self.target = target

    def execute(self, kernel: "Kernel", thread: "SimThread") -> None:
        if not self.target.alive:
            kernel.resume(thread, self.target.result)
        else:
            thread.blocked_on = self
            self.target.joiners.append(thread)

    def __repr__(self) -> str:
        return f"Join({self.target.name})"


class Spawn(Syscall):
    """Spawn a child thread; result is the new :class:`SimThread`.

    The child inherits the spawner's stage unless one is given.
    """

    __slots__ = ("generator", "name", "stage")

    def __init__(self, generator: Iterator, name: Optional[str] = None, stage: Any = None):
        self.generator = generator
        self.name = name
        self.stage = stage

    def execute(self, kernel: "Kernel", thread: "SimThread") -> None:
        stage = self.stage if self.stage is not None else thread.stage
        child = kernel.spawn(self.generator, name=self.name, stage=stage)
        kernel.resume(thread, child)


class CurrentThread(Syscall):
    """Yield this to obtain the running :class:`SimThread` object.

    The idiomatic first line of a thread body::

        def worker():
            thread = yield CurrentThread()
    """

    __slots__ = ()

    def execute(self, kernel: "Kernel", thread: "SimThread") -> None:
        kernel.resume(thread, thread)


class SimThread:
    """A simulated thread of execution.

    Attributes
    ----------
    call_stack:
        Explicit stack of frame names; the profiler snapshots it when a
        sample lands on this thread.
    tran_ctxt:
        The thread's current transaction context (an opaque value owned
        by :mod:`repro.core`), or ``None`` when the thread is not
        executing on behalf of any transaction.
    stage:
        The profiling stage runtime this thread belongs to, or ``None``.
    """

    __slots__ = (
        "kernel",
        "generator",
        "tid",
        "_name",
        "stage",
        "daemon",
        "alive",
        "result",
        "failure",
        "blocked_on",
        "joiners",
        "call_stack",
        "tran_ctxt",
    )

    def __init__(
        self,
        kernel: "Kernel",
        generator: Iterator,
        tid: int,
        name: Optional[str] = None,
        stage: Any = None,
    ):
        self.kernel = kernel
        self.generator = generator
        self.tid = tid
        self._name = name
        self.stage = stage
        self.daemon = False
        self.alive = True
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        self.blocked_on: Optional[Syscall] = None
        self.joiners: List["SimThread"] = []
        self.call_stack: List[str] = []
        self.tran_ctxt: Any = None

    def _reinit(
        self,
        generator: Iterator,
        tid: int,
        name: Optional[str],
        stage: Any,
    ) -> None:
        """Re-arm a recycled shell from the kernel's thread freelist.

        Every field a dead thread could leak into its successor is
        scrubbed here (reuse-after-release is field-clean); the joiner
        and call-stack *list objects* are reused, which is the point of
        recycling.
        """
        self.generator = generator
        self.tid = tid
        self._name = name
        self.stage = stage
        self.daemon = False
        self.alive = True
        self.result = None
        self.failure = None
        self.blocked_on = None
        self.joiners.clear()
        self.call_stack.clear()
        self.tran_ctxt = None

    @property
    def name(self) -> str:
        """Thread name, derived lazily from the tid when not given.

        Anonymous request/session threads dominate churn-heavy runs;
        deferring the f-string keeps spawn() allocation-free for them.
        """
        name = self._name
        if name is None:
            name = self._name = f"thread-{self.tid}"
        return name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, value: Any = None) -> None:
        """Advance the coroutine with ``value`` until the next syscall."""
        if not self.alive:
            return
        self.blocked_on = None
        try:
            syscall = self.generator.send(value)
        except StopIteration as stop:
            # Inlined finish(): the generator just returned, so it is
            # already exhausted and close() would be a no-op — thread
            # death is the churn hot path and the extra frames are
            # measurable.
            self.alive = False
            result = self.result = stop.value
            joiners = self.joiners
            if joiners:
                kernel = self.kernel
                for joiner in joiners:
                    kernel.resume(joiner, result)
                joiners.clear()
            stage = self.stage
            if stage is not None:
                try:
                    on_exit = stage.on_thread_exit
                except AttributeError:
                    pass
                else:
                    on_exit(self)
            self.kernel.reap(self)
            return
        except BaseException as exc:
            self.fail(exc)
            raise
        # Inlined _dispatch: step() runs once per scheduled event on
        # every thread, so the extra frame is pure overhead.
        if isinstance(syscall, Syscall):
            syscall.execute(self.kernel, self)
        else:
            self.fail(TypeError(f"{self.name} yielded non-syscall {syscall!r}"))
            raise TypeError(f"{self.name} yielded non-syscall {syscall!r}")

    def throw(self, exc: BaseException) -> None:
        """Raise ``exc`` at the thread's current yield point."""
        if not self.alive:
            return
        self.blocked_on = None
        try:
            syscall = self.generator.throw(exc)
        except StopIteration as stop:
            self.finish(stop.value)
            return
        except BaseException as raised:
            if raised is exc:
                # The thread did not handle it: record and terminate.
                self.fail(exc)
                return
            self.fail(raised)
            raise
        self._dispatch(syscall)

    def _dispatch(self, syscall: Any) -> None:
        if not isinstance(syscall, Syscall):
            self.fail(TypeError(f"{self.name} yielded non-syscall {syscall!r}"))
            raise TypeError(f"{self.name} yielded non-syscall {syscall!r}")
        syscall.execute(self.kernel, self)

    def finish(self, result: Any) -> None:
        """Mark the thread finished and wake its joiners."""
        self.alive = False
        self.result = result
        self.generator.close()
        for joiner in self.joiners:
            self.kernel.resume(joiner, result)
        self.joiners.clear()
        self._teardown()

    def fail(self, exc: BaseException) -> None:
        self.alive = False
        self.failure = exc
        for joiner in self.joiners:
            self.kernel.throw_in(joiner, exc)
        self.joiners.clear()
        self._teardown()

    def _teardown(self) -> None:
        """Release per-thread state held elsewhere once the thread dies.

        The stage drops any queued-but-uncharged profiler overhead (the
        thread will never run work() again) and the kernel reaps the
        thread from its registry so long runs spawning millions of
        short-lived request threads stay bounded.
        """
        stage = self.stage
        if stage is not None:
            try:
                on_exit = stage.on_thread_exit
            except AttributeError:
                pass
            else:
                on_exit(self)
        self.kernel.reap(self)

    # ------------------------------------------------------------------
    # Profiler support
    # ------------------------------------------------------------------
    def push_frame(self, name: str) -> None:
        """Enter a named procedure (gprof's call-count hook lives here)."""
        self.call_stack.append(name)
        if self.stage is not None:
            self.stage.on_call(self)

    def pop_frame(self, name: str) -> None:
        """Leave a named procedure; must match the top of the stack."""
        if not self.call_stack or self.call_stack[-1] != name:
            raise RuntimeError(
                f"{self.name}: pop_frame({name!r}) does not match stack "
                f"{self.call_stack!r}"
            )
        self.call_stack.pop()

    def call_path(self) -> tuple:
        """The current call path as an immutable tuple of frame names."""
        return tuple(self.call_stack)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<SimThread {self.name} tid={self.tid} {state}>"


class frame:
    """Context manager marking a profiled procedure on a thread.

    Usage inside a thread generator::

        with frame(thread, "ap_process_connection"):
            yield UseCPU(cpu, 0.002)

    Works across ``yield`` because generator frames suspend and resume
    with the ``with`` block intact.
    """

    __slots__ = ("thread", "name")

    def __init__(self, thread: SimThread, name: str):
        self.thread = thread
        self.name = name

    def __enter__(self) -> "frame":
        self.thread.push_frame(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On exception paths the stack may already have been torn down
        # by thread.fail(); only pop when the frame is still on top.
        if self.thread.call_stack and self.thread.call_stack[-1] == self.name:
            self.thread.pop_frame(self.name)
